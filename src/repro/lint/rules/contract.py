"""Contract-conformance rules: RL201–RL203.

These are *project* rules: they parse several modules' ASTs and prove
cross-module invariants that no single-file linter can see — the
"equivalent or absent" kernel contract, the synchronous-only guard, and
the Paper-claim docstring uniformity.  Everything is read from literals
(dict keys, tuple elements, keyword constants), never by importing the
code, so the checks run on broken or partial trees and in CI without
optional dependencies.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..engine import ModuleInfo, Project
from ..registry import ProjectRule, register
from ..violation import Violation

#: Where the pieces of the kernel contract live.
API_MODULE = "repro.api"
COLUMNAR_MODULE = "repro.sim.columnar"
KERNELS_MODULE = "repro.sim.columnar.kernels"


# ----------------------------------------------------------------------
# AST extraction helpers
# ----------------------------------------------------------------------
@dataclass
class SpecLiteral:
    """One ``AlgorithmSpec(...)`` entry read from the registry literal."""

    name: str
    line: int
    factory_class: Optional[str] = None
    result: Optional[str] = None
    time: Optional[str] = None
    messages: Optional[str] = None
    needs: Tuple[str, ...] = ()
    backends: Optional[Tuple[str, ...]] = None
    delay_tolerant: Optional[bool] = None


@dataclass
class RegistryLiteral:
    """Everything RL20x needs from ``repro.api._registry``."""

    specs: Dict[str, SpecLiteral] = field(default_factory=dict)
    #: class name -> defining module (from the function's import block).
    class_modules: Dict[str, str] = field(default_factory=dict)
    #: True when the `for name in KERNEL_ALGORITHMS: ...backends...`
    #: capability loop is present.
    has_kernel_loop: bool = False


def _const_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _str_tuple(node: ast.expr) -> Optional[Tuple[str, ...]]:
    if isinstance(node, (ast.Tuple, ast.List)):
        items = [_const_str(el) for el in node.elts]
        if all(i is not None for i in items):
            return tuple(items)  # type: ignore[arg-type]
    return None


def _factory_class(node: ast.expr) -> Optional[str]:
    """Class name a factory expression refers to (name or lambda body)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Lambda):
        body = node.body
        if isinstance(body, ast.Call):
            if isinstance(body.func, ast.Name):
                return body.func.id
    return None


def parse_registry(info: ModuleInfo) -> Optional[RegistryLiteral]:
    """Read the ``specs = {...}`` literal out of ``_registry()``."""
    registry_fn = None
    for node in info.tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == "_registry":
            registry_fn = node
            break
    if registry_fn is None:
        return None

    out = RegistryLiteral()
    package = info.module.rsplit(".", 1)[0] if "." in info.module else ""
    for node in ast.walk(registry_fn):
        if isinstance(node, ast.ImportFrom) and node.level >= 1:
            base = package
            for _ in range(node.level - 1):
                base = base.rsplit(".", 1)[0]
            origin = f"{base}.{node.module}" if node.module else base
            for alias in node.names:
                out.class_modules[alias.asname or alias.name] = origin
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                name = _const_str(key) if key is not None else None
                if (name is None or not isinstance(value, ast.Call)
                        or not isinstance(value.func, ast.Name)
                        or value.func.id != "AlgorithmSpec"):
                    continue
                spec = SpecLiteral(name=name, line=value.lineno)
                if value.args:
                    spec.factory_class = _factory_class(value.args[0])
                for kw in value.keywords:
                    if kw.arg == "factory":
                        spec.factory_class = _factory_class(kw.value)
                    elif kw.arg in ("result", "time", "messages"):
                        setattr(spec, kw.arg, _const_str(kw.value))
                    elif kw.arg == "needs":
                        spec.needs = _str_tuple(kw.value) or ()
                    elif kw.arg == "backends":
                        spec.backends = _str_tuple(kw.value)
                    elif kw.arg == "delay_tolerant":
                        if isinstance(kw.value, ast.Constant):
                            spec.delay_tolerant = bool(kw.value.value)
                out.specs[name] = spec
        elif isinstance(node, ast.For):
            # for name in KERNEL_ALGORITHMS: specs[name].backends = ...
            if (isinstance(node.iter, ast.Name)
                    and node.iter.id == "KERNEL_ALGORITHMS"):
                out.has_kernel_loop = True
    return out


def _assigned_literal(info: ModuleInfo, name: str) -> Optional[ast.expr]:
    """The top-level literal assigned to ``name`` (Assign or AnnAssign)."""
    for node in info.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
        elif isinstance(node, ast.AnnAssign):
            if (isinstance(node.target, ast.Name)
                    and node.target.id == name):
                return node.value
    return None


def kernel_algorithms(info: ModuleInfo) -> Optional[Tuple[str, ...]]:
    value = _assigned_literal(info, "KERNEL_ALGORITHMS")
    return _str_tuple(value) if value is not None else None


def _class_str_attrs(info: ModuleInfo, attr: str) -> Dict[str, str]:
    """``{class name: value}`` for class-level ``attr = "literal"``."""
    out: Dict[str, str] = {}
    for node in info.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == attr
                    for t in stmt.targets):
                value = stmt.value
            elif (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == attr):
                value = stmt.value
            if value is not None:
                text = _const_str(value)
                if text is not None:
                    out[node.name] = text
    return out


def kernel_registry_keys(info: ModuleInfo) -> Optional[Dict[str, int]]:
    """``KERNELS`` dict keys -> line numbers.

    Keys are either string literals or ``SomeKernel.algorithm``
    references; the latter resolve through the class-level
    ``algorithm = "..."`` constant of the same module.
    """
    value = _assigned_literal(info, "KERNELS")
    if not isinstance(value, ast.Dict):
        return None
    algorithm_of = _class_str_attrs(info, "algorithm")
    keys: Dict[str, int] = {}
    for key in value.keys:
        if key is None:
            continue
        name = _const_str(key)
        if (name is None and isinstance(key, ast.Attribute)
                and key.attr == "algorithm"
                and isinstance(key.value, ast.Name)):
            name = algorithm_of.get(key.value.id)
        if name is not None:
            keys[name] = key.lineno
    return keys


# ----------------------------------------------------------------------
@register
class KernelRegistryRule(ProjectRule):
    """RL201: ``AlgorithmSpec.backends`` ↔ columnar kernel registry."""

    code = "RL201"
    summary = ("an algorithm advertises a columnar backend without a "
               "registered kernel (or vice versa)")

    def check_project(self, project: Project) -> Iterable[Violation]:
        api = project.get(API_MODULE)
        columnar = project.get(COLUMNAR_MODULE)
        kernels = project.get(KERNELS_MODULE)

        advertised = kernel_algorithms(columnar) if columnar else None
        registered = kernel_registry_keys(kernels) if kernels else None
        registry = parse_registry(api) if api else None

        if columnar is not None and advertised is None:
            yield self.violation(
                columnar, 0, 0,
                "KERNEL_ALGORITHMS is not a static tuple of string "
                "literals — capability listings must not require numpy")
            return

        # Advertised capability <-> registered kernel, both directions.
        if advertised is not None and registered is not None:
            assert columnar is not None and kernels is not None
            for name in advertised:
                if name not in registered:
                    yield self.violation(
                        columnar, 0, 0,
                        f"algorithm {name!r} is advertised in "
                        f"KERNEL_ALGORITHMS but has no kernel registered "
                        f"in KERNELS ({KERNELS_MODULE}) — the columnar "
                        f"backend would refuse every request for it")
            for name, line in registered.items():
                if name not in advertised:
                    yield self.violation(
                        kernels, line, 0,
                        f"kernel for {name!r} is registered in KERNELS "
                        f"but missing from KERNEL_ALGORITHMS — `repro "
                        f"list` would hide the capability")

        # Registry names advertising "columnar" must have a kernel.
        if registry is not None:
            assert api is not None
            source = advertised if advertised is not None else (
                tuple(registered) if registered is not None else None)
            for spec in registry.specs.values():
                if spec.backends and "columnar" in spec.backends:
                    if source is not None and spec.name not in source:
                        yield self.violation(
                            api, spec.line, 0,
                            f"AlgorithmSpec {spec.name!r} lists a "
                            f"'columnar' backend but no kernel is "
                            f"registered for it")
            if advertised is not None:
                for name in advertised:
                    if name not in registry.specs:
                        assert columnar is not None
                        yield self.violation(
                            columnar, 0, 0,
                            f"KERNEL_ALGORITHMS names {name!r}, which is "
                            f"not an algorithm in the repro.api registry")
                if not registry.has_kernel_loop:
                    yield self.violation(
                        api, 0, 0,
                        "repro.api._registry never folds "
                        "KERNEL_ALGORITHMS into AlgorithmSpec.backends — "
                        "columnar capability would be invisible")


# ----------------------------------------------------------------------
@register
class DelayGuardRule(ProjectRule):
    """RL202: delay-model entry points must consult ``delay_tolerant``.

    ``delay_tolerant=False`` algorithms (the kingdom family) crash with
    a mid-run ``ModelViolation`` under Δ>1 delays; every module that
    builds an execution model from user input (calls ``make_model``)
    and can route arbitrary registry algorithms into a run must gate on
    the spec's ``delay_tolerant`` flag so the refusal is up-front and
    clear.
    """

    code = "RL202"
    summary = ("module builds a delay model from user input but never "
               "checks AlgorithmSpec.delay_tolerant")

    def check_project(self, project: Project) -> Iterable[Violation]:
        api = project.get(API_MODULE)
        registry = parse_registry(api) if api else None
        if registry is not None and not any(
                s.delay_tolerant is False for s in registry.specs.values()):
            return  # nothing synchronous-only: no guard needed anywhere

        for info in project.modules.values():
            if info.module in ("repro.sim.models",):
                continue  # make_model's home is below the guard layer
            call = self._make_model_call(info)
            if call is None:
                continue
            if not self._mentions_delay_tolerant(info):
                yield self.violation(
                    info, call.lineno, call.col_offset,
                    "this module turns user input into an execution "
                    "model (make_model) but never consults "
                    "AlgorithmSpec.delay_tolerant — synchronous-only "
                    "algorithms would crash mid-run under --delay "
                    "instead of refusing up front")

    @staticmethod
    def _make_model_call(info: ModuleInfo) -> Optional[ast.Call]:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Call):
                func = node.func
                name = (func.id if isinstance(func, ast.Name)
                        else func.attr if isinstance(func, ast.Attribute)
                        else None)
                if name == "make_model":
                    return node
        return None

    @staticmethod
    def _mentions_delay_tolerant(info: ModuleInfo) -> bool:
        for node in ast.walk(info.tree):
            if (isinstance(node, ast.Attribute)
                    and node.attr == "delay_tolerant"):
                return True
            if (isinstance(node, ast.Constant)
                    and node.value == "delay_tolerant"):
                return True  # getattr(spec, "delay_tolerant", True)
        return False


# ----------------------------------------------------------------------
#: ``:Field:  text`` lines inside the "Paper claim" docstring block.
_CLAIM_FIELD = re.compile(r"^:(Result|Time|Messages|Knowledge):\s*(.*)$")

#: Core modules exempt from the Paper-claim block: infrastructure that
#: does not itself realize a Table-1 row.
CORE_EXEMPT = ("repro.core.base", "repro.core.waves",
               "repro.core.broadcast", "repro.core.__init__",
               "repro.core")


def parse_claim_block(docstring: str) -> Dict[str, str]:
    """The ``:Result:`` / ``:Time:`` / ... fields of a module docstring."""
    fields: Dict[str, str] = {}
    in_block = False
    for line in docstring.splitlines():
        stripped = line.strip()
        if stripped.lower() == "paper claim":
            in_block = True
            continue
        if not in_block:
            continue
        match = _CLAIM_FIELD.match(stripped)
        if match:
            fields[match.group(1)] = match.group(2).strip()
        elif fields and not stripped:
            break  # blank line ends the field list
    return fields


def _normalize(text: str) -> str:
    """Comparison form: drop whitespace and typography, lowercase."""
    text = text.replace("ε", "eps").replace("Δ", "delta").replace("Θ", "theta")
    return re.sub(r"[\s·×*{}]", "", text).lower()


#: Claim anchors: theorem/corollary-style numbers and citation refs.
_ANCHOR_NUMBER = re.compile(r"\d+\.\d+")
_ANCHOR_CITE = re.compile(r"\[\d+\]")

#: Qualifier words in a bound that carry no symbol content.
_BOUND_STOPWORDS = frozenset({
    "o", "exp", "expected", "whp", "w", "h", "p", "amortized",
    "deterministic", "det", "rounds", "round", "messages", "msgs",
    "time", "per", "bits", "bit", "words", "word", "in", "unbounded",
})


def _claim_anchors(text: str) -> Tuple[Set[str], Set[str]]:
    """(numbers, citations) that pin a Result claim to the paper."""
    return (set(_ANCHOR_NUMBER.findall(text)),
            set(_ANCHOR_CITE.findall(text)))


def _bound_symbols(text: str) -> Set[str]:
    """Symbol families of an asymptotic bound, e.g. ``{"m", "log", "d"}``.

    Single letters are variables; any ``log``-prefixed token (``log``,
    ``loglog``, ``log^3/2``) collapses to the ``log`` family, so an
    elaborated docstring bound like ``O(m · min(log f(n), D))`` is
    consistent with the registry's ``O(m·min(loglog n, D))`` — while a
    genuinely different bound (a dropped variable) still fires.
    """
    symbols: Set[str] = set()
    lowered = (text.replace("ε", "eps").replace("Δ", "delta")
               .replace("Θ", "theta").lower())
    for token in re.findall(r"[a-z]+", lowered):
        if token.startswith("log"):
            symbols.add("log")
        elif token not in _BOUND_STOPWORDS:
            symbols.add(token)
    return symbols


def _result_consistent(spec_text: str, doc_text: str) -> bool:
    """Docstring Result names the same theorem/citation as the registry."""
    numbers, cites = _claim_anchors(spec_text)
    doc_numbers, doc_cites = _claim_anchors(doc_text)
    if numbers or cites:
        return numbers <= doc_numbers and cites <= doc_cites
    # No numeric anchor ("Intro example"): fall back to sharing at
    # least one substantive word.
    doc_norm = _normalize(doc_text)
    words = [w for w in re.findall(r"[a-z]+", spec_text.lower())
             if len(w) >= 4]
    return any(w in doc_norm for w in words) if words else True


def _bound_consistent(spec_text: str, doc_text: str) -> bool:
    """Docstring bound mentions every symbol family of the registry bound."""
    return _bound_symbols(spec_text) <= _bound_symbols(doc_text)


@register
class PaperClaimRule(ProjectRule):
    """RL203: core algorithm modules carry a consistent Paper-claim block."""

    code = "RL203"
    summary = ("core algorithm module missing the 'Paper claim' "
               "docstring block, or its fields contradict the "
               "AlgorithmSpec registry entry")

    def check_project(self, project: Project) -> Iterable[Violation]:
        api = project.get(API_MODULE)
        if api is None:
            return
        registry = parse_registry(api)
        if registry is None:
            return

        #: module -> spec literals realized by a class in that module.
        by_module: Dict[str, List[SpecLiteral]] = {}
        for spec in registry.specs.values():
            module = registry.class_modules.get(spec.factory_class or "")
            if module is not None:
                by_module.setdefault(module, []).append(spec)

        for module, specs in sorted(by_module.items()):
            info = project.get(module)
            if info is None or not info.module.startswith("repro.core"):
                continue
            docstring = ast.get_docstring(info.tree) or ""
            fields = parse_claim_block(docstring)
            if not fields:
                yield self.violation(
                    info, 1, 0,
                    f"module realizes AlgorithmSpec "
                    f"{specs[0].name!r} but its docstring has no "
                    f"'Paper claim' block (:Result:/:Time:/:Messages:/"
                    f":Knowledge: fields)")
                continue
            missing = [f for f in ("Result", "Time", "Messages",
                                   "Knowledge") if f not in fields]
            if missing:
                yield self.violation(
                    info, 1, 0,
                    f"'Paper claim' block is missing field(s): "
                    f"{', '.join(missing)}")
                continue
            for spec in specs:
                yield from self._check_spec(info, spec, fields)

        # The reverse direction: every non-exempt core module that the
        # registry does NOT reference should still not fake the block
        # with empty fields — but absence is fine (helpers).  Nothing to
        # check here; the exemption list documents intent.

    def _check_spec(self, info: ModuleInfo, spec: SpecLiteral,
                    fields: Dict[str, str]) -> Iterable[Violation]:
        checks = (("result", "Result", _result_consistent),
                  ("time", "Time", _bound_consistent),
                  ("messages", "Messages", _bound_consistent))
        for attr, fname, consistent in checks:
            claimed = getattr(spec, attr)
            if not claimed:
                continue
            if not consistent(claimed, fields[fname]):
                yield self.violation(
                    info, 1, 0,
                    f"Paper-claim :{fname}: {fields[fname]!r} is "
                    f"inconsistent with the registry's {attr} "
                    f"{claimed!r} for AlgorithmSpec {spec.name!r} — "
                    f"one of the two is stale")
        knowledge = fields["Knowledge"]
        for key in spec.needs:
            if not re.search(rf"(?<![A-Za-z]){re.escape(key)}(?![A-Za-z])",
                             knowledge):
                yield self.violation(
                    info, 1, 0,
                    f"Paper-claim :Knowledge: {knowledge!r} does not "
                    f"mention required knowledge key {key!r} of "
                    f"AlgorithmSpec {spec.name!r}")
