"""Suppression hygiene: RL001.

The detection logic lives in the engine (it needs the post-filter view
of which suppressions fired); this registration makes the rule visible
to ``--list-rules`` and addressable by ``--select``/``--ignore`` like
any other.
"""

from __future__ import annotations

from typing import Iterable

from ..engine import ModuleInfo
from ..registry import FileRule, register
from ..violation import Severity, Violation


@register
class StaleSuppressionRule(FileRule):
    """RL001: every ``# repro: noqa[RLxxx]`` must suppress something."""

    code = "RL001"
    summary = ("stale suppression: `# repro: noqa[RLxxx]` that silences "
               "nothing, or names an unknown rule")
    severity = Severity.WARNING

    def check(self, info: ModuleInfo) -> Iterable[Violation]:
        # Implemented by the engine after suppression filtering — see
        # repro.lint.engine._stale_suppressions.
        return ()
