"""Scheduler-idiom safety: RL301.

The model layer (PR 3), the aggregated-broadcast path (PR 4), and the
tracer layer (PR 6) all use the same trick: a hot method is *rebound as
an instance attribute* (``self._execute_round = self._execute_round_model``
or ``self._dispatch_round = dispatch_obs`` for a closure wrapper), so
the default path stays branch-free while variants swap in per instance.
The trick is only sound if every rebound callable keeps the original
method's signature — callers dispatch through the attribute without
knowing which variant is live, so a drifted parameter list fails at
call time, on the variant path only, where the default-path test suite
never looks.  RL301 proves signature agreement at the AST level.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional, Tuple

from ..engine import ModuleInfo
from ..registry import FileRule, register
from ..violation import Violation


def _signature(args: ast.arguments, *, drop_self: bool) -> Tuple:
    """Comparable shape of an argument list (names, kinds, defaults).

    Annotations are deliberately ignored: wrapper closures often omit
    them, and the dispatch contract is positional/keyword shape, not
    typing.
    """
    pos = [a.arg for a in args.posonlyargs + args.args]
    if drop_self and pos:
        pos = pos[1:]
    return (
        tuple(pos),
        len(args.posonlyargs),
        len(args.defaults),
        args.vararg.arg if args.vararg else None,
        tuple(a.arg for a in args.kwonlyargs),
        sum(1 for d in args.kw_defaults if d is not None),
        args.kwarg.arg if args.kwarg else None,
    )


def _render(sig: Tuple) -> str:
    pos, _, ndef, vararg, kwonly, _, kwarg = sig
    parts = list(pos)
    if vararg:
        parts.append(f"*{vararg}")
    elif kwonly:
        parts.append("*")
    parts.extend(kwonly)
    if kwarg:
        parts.append(f"**{kwarg}")
    return "(" + ", ".join(parts) + ")"


@register
class RebindSignatureRule(FileRule):
    """RL301: rebound methods must keep the original's signature."""

    code = "RL301"
    summary = ("instance-method rebinding changes the method's "
               "signature — callers dispatch through the attribute and "
               "would break on the rebound path only")

    def check(self, info: ModuleInfo) -> Iterable[Violation]:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(info, node)

    def _check_class(self, info: ModuleInfo,
                     cls: ast.ClassDef) -> Iterable[Violation]:
        methods: Dict[str, ast.FunctionDef] = {
            stmt.name: stmt for stmt in cls.body
            if isinstance(stmt, ast.FunctionDef)}
        for method in methods.values():
            #: local function definitions seen so far in this method.
            locals_defs: Dict[str, ast.FunctionDef] = {}
            for stmt in ast.walk(method):
                if (isinstance(stmt, ast.FunctionDef)
                        and stmt is not method):
                    locals_defs[stmt.name] = stmt
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    original = self._self_attr(target)
                    if original is None or original not in methods:
                        continue
                    rebound = self._rebound_signature(
                        stmt.value, methods, locals_defs)
                    if rebound is None:
                        continue
                    source_name, sig = rebound
                    want = _signature(methods[original].args,
                                      drop_self=True)
                    if sig != want:
                        yield self.violation(
                            info, stmt.lineno, stmt.col_offset,
                            f"self.{original} is rebound to "
                            f"{source_name} with signature "
                            f"{_render(sig)}, but the original method "
                            f"takes {_render(want)} — callers dispatch "
                            f"through self.{original} and would break "
                            f"on the rebound path")

    @staticmethod
    def _self_attr(node: ast.expr) -> Optional[str]:
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return node.attr
        return None

    def _rebound_signature(
            self, value: ast.expr, methods: Dict[str, ast.FunctionDef],
            locals_defs: Dict[str, ast.FunctionDef],
    ) -> Optional[Tuple[str, Tuple]]:
        """Signature of the callable being bound, when it is provable."""
        # self.x = self.y  (method-variant rebinding)
        attr = self._self_attr(value)
        if attr is not None and attr in methods:
            return (f"self.{attr}",
                    _signature(methods[attr].args, drop_self=True))
        # self.x = wrapper  (closure wrapper defined in this method)
        if isinstance(value, ast.Name) and value.id in locals_defs:
            return (f"local function {value.id!r}",
                    _signature(locals_defs[value.id].args,
                               drop_self=False))
        return None
