"""The lint driver: discover, parse, run rules, apply suppressions.

The engine never imports the code it checks — every judgment is made
from the AST and the token stream, so linting is safe on broken trees
and proves properties of the *source*, not of one interpreter session
(a ``random.random()`` call is flagged whether or not the module it
lives in is reachable from the current entry point).

Pipeline::

    paths -> discover_files -> load_module (ast + suppressions)
          -> Project -> FileRule.check per module
                      -> ProjectRule.check_project once
          -> suppression filter (+ RL001 for stale suppressions)
          -> LintResult (sorted violations)
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .registry import FileRule, ProjectRule, Rule, resolve_rules
from .suppress import Suppressions, scan_suppressions
from .violation import Severity, Violation

#: Code used for files that cannot be parsed at all.
PARSE_ERROR_CODE = "RL000"


@dataclass
class ModuleInfo:
    """One parsed source file plus everything rules need to judge it."""

    path: str               #: path as reported in violations
    module: str             #: dotted module name derived from the tree
    source: str
    tree: ast.Module
    suppressions: Suppressions

    def in_package(self, *packages: str) -> bool:
        """True if this module is ``pkg`` or lives under ``pkg.``."""
        return any(self.module == p or self.module.startswith(p + ".")
                   for p in packages)


@dataclass
class Project:
    """Every successfully parsed module, keyed by dotted name."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)

    def get(self, module: str) -> Optional[ModuleInfo]:
        return self.modules.get(module)

    def in_package(self, package: str) -> List[ModuleInfo]:
        return [info for info in self.modules.values()
                if info.in_package(package)]


@dataclass
class LintResult:
    """The outcome of one lint run."""

    violations: List[Violation]
    files: int
    rules: List[str]

    @property
    def exit_code(self) -> int:
        """Blocking-gate semantics: any violation fails the run."""
        return 1 if self.violations else 0

    def by_code(self, code: str) -> List[Violation]:
        return [v for v in self.violations if v.code == code]


def module_name(path: str) -> str:
    """Dotted module name of ``path``, found by walking up the package
    tree (directories containing ``__init__.py``).

    A file outside any package is its own bare stem — rules scoped to
    ``repro.*`` simply don't apply to it.
    """
    path = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(path))[0]]
    parent = os.path.dirname(path)
    while os.path.isfile(os.path.join(parent, "__init__.py")):
        parts.append(os.path.basename(parent))
        parent = os.path.dirname(parent)
    if parts[0] == "__init__":
        parts = parts[1:] or parts
    return ".".join(reversed(parts))


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if not d.startswith(".")
                                 and d != "__pycache__")
                found.extend(os.path.join(root, f)
                             for f in sorted(files) if f.endswith(".py"))
        else:
            found.append(path)
    seen = set()
    unique = []
    for f in found:
        if f not in seen:
            seen.add(f)
            unique.append(f)
    return unique


def load_module(path: str) -> ModuleInfo:
    """Read and parse one file (raises ``OSError``/``SyntaxError``)."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=path)
    return ModuleInfo(path=path, module=module_name(path), source=source,
                      tree=tree, suppressions=scan_suppressions(source))


def lint_paths(paths: Sequence[str], *,
               select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None) -> LintResult:
    """Lint every ``.py`` file under ``paths`` and return the result."""
    rules = resolve_rules(select=select, ignore=ignore)
    project = Project()
    violations: List[Violation] = []

    files = discover_files(paths)
    for path in files:
        try:
            info = load_module(path)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", 0) or 0
            violations.append(Violation(
                code=PARSE_ERROR_CODE, message=f"cannot parse file: {exc}",
                path=path, line=line, col=0, severity=Severity.ERROR,
                module=""))
            continue
        project.modules[info.module] = info

    raw: List[Violation] = []
    for rule in rules:
        if isinstance(rule, FileRule):
            for info in project.modules.values():
                raw.extend(rule.check(info))
        elif isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(project))

    # Per-line suppressions: a violation on a line carrying a matching
    # repro-noqa marker for its code is silenced (and the suppression
    # is marked used, so RL001 below won't flag it as stale).
    path_table: Dict[str, Suppressions] = {
        info.path: info.suppressions for info in project.modules.values()}
    for v in raw:
        table = path_table.get(v.path)
        if table is not None and table.covers(v.line, v.code):
            continue
        violations.append(v)

    violations.extend(_stale_suppressions(project, rules))
    violations.sort(key=Violation.sort_key)
    return LintResult(violations=violations, files=len(files),
                      rules=[r.code for r in rules])


def _stale_suppressions(project: Project,
                        rules: Sequence[Rule]) -> List[Violation]:
    """RL001: suppressions that silenced nothing, or name unknown rules.

    Only meaningful when the full rule set ran — a `--select RL103` run
    must not call every other suppression stale — so the check is
    skipped unless RL001 itself is among the enabled rules *and* no
    select-narrowing happened (every registered code is enabled).
    """
    from .registry import all_rules

    enabled = {r.code for r in rules}
    if "RL001" not in enabled or not set(all_rules()) <= enabled:
        return []
    known = set(all_rules())
    found = []
    for info in project.modules.values():
        for line, code in info.suppressions.unused():
            detail = ("unknown rule code" if code not in known
                      else "nothing to suppress on this line")
            found.append(Violation(
                code="RL001",
                message=f"stale suppression `# repro: noqa[{code}]` "
                        f"({detail}); remove it",
                path=info.path, line=line, col=0,
                severity=Severity.WARNING, module=info.module))
    return found
