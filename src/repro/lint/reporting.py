"""Reporters: render a :class:`~repro.lint.engine.LintResult`.

Two formats:

* ``text`` — one ``path:line:col: CODE [severity] message`` line per
  violation plus a summary, for humans and editors;
* ``json`` — a versioned, schema-stable document for CI artifacts and
  tooling.  The document round-trips: ``violations_from_json``
  reconstructs the exact :class:`Violation` list.

Both renderings are deterministic: violations are pre-sorted by
``(path, line, col, code)`` and the JSON is emitted with sorted keys.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .engine import LintResult
from .violation import Severity, Violation

#: Bump only on a breaking change to the JSON document shape.
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    lines = [v.render() for v in result.violations]
    errors = sum(1 for v in result.violations
                 if v.severity is Severity.ERROR)
    warnings = len(result.violations) - errors
    if result.violations:
        lines.append(f"{len(result.violations)} violation(s) "
                     f"({errors} error(s), {warnings} warning(s)) "
                     f"in {result.files} file(s)")
    else:
        lines.append(f"clean: {result.files} file(s), "
                     f"{len(result.rules)} rule(s), 0 violations")
    return "\n".join(lines)


def to_json(result: LintResult) -> Dict[str, Any]:
    return {
        "schema_version": JSON_SCHEMA_VERSION,
        "files": result.files,
        "rules": list(result.rules),
        "violations": [v.to_json() for v in result.violations],
        "counts": {
            "total": len(result.violations),
            "errors": sum(1 for v in result.violations
                          if v.severity is Severity.ERROR),
            "warnings": sum(1 for v in result.violations
                            if v.severity is Severity.WARNING),
        },
    }


def render_json(result: LintResult) -> str:
    return json.dumps(to_json(result), indent=1, sort_keys=True)


def violations_from_json(document: Dict[str, Any]) -> List[Violation]:
    """Reconstruct the violation list from a ``to_json`` document."""
    if document.get("schema_version") != JSON_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported lint JSON schema_version "
            f"{document.get('schema_version')!r} "
            f"(expected {JSON_SCHEMA_VERSION})")
    return [Violation.from_json(rec) for rec in document["violations"]]
