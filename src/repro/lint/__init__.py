"""repro.lint — domain-specific static analysis for this repository.

An AST-based rule engine that *proves* the invariants the rest of the
codebase holds by convention: all randomness flows from the seeded
streams of :mod:`repro.sim.contract` (RL101/RL102/RL105), iteration
order never leaks hash-table order into messages (RL103), the columnar
kernel registry and ``AlgorithmSpec.backends`` agree (RL201), delay
entry points guard synchronous-only algorithms (RL202), core modules
carry Paper-claim docstrings consistent with the registry (RL203), and
the instance-method-rebinding idiom preserves signatures (RL301).

Usage::

    repro lint src/                       # CI gate: exit 1 on findings
    repro lint --select RL1 src/          # determinism rules only
    repro lint --format json src/ > lint.json
    repro lint --list-rules

Per-line opt-out (explicit codes only, audited by RL001)::

    risky_call()  # repro: noqa[RL103]

Nothing is ever imported from the checked tree — judgments are made on
the AST and token stream alone, so the linter runs on broken trees and
needs no optional dependencies.
"""

from __future__ import annotations

from .engine import (LintResult, ModuleInfo, Project, discover_files,
                     lint_paths, load_module, module_name)
from .registry import RULES, FileRule, ProjectRule, Rule, all_rules, resolve_rules
from .reporting import (JSON_SCHEMA_VERSION, render_json, render_text,
                        to_json, violations_from_json)
from .violation import Severity, Violation

__all__ = [
    "FileRule", "JSON_SCHEMA_VERSION", "LintResult", "ModuleInfo",
    "Project", "ProjectRule", "RULES", "Rule", "Severity", "Violation",
    "all_rules", "discover_files", "lint_paths", "load_module",
    "module_name", "render_json", "render_text", "resolve_rules",
    "to_json", "violations_from_json",
]
