"""Per-line suppression comments: ``# repro: noqa[RL101]``.

The syntax is deliberately explicit: a suppression must name the rule
codes it silences (comma-separated inside the brackets).  There is no
blanket ``# repro: noqa`` — an invariant strong enough to lint for is
strong enough to name when opting out — and an unknown or unused
suppression is itself reported (rule RL001), so stale opt-outs cannot
accumulate silently.

Comments are located with :mod:`tokenize`, never by string matching, so
a ``# repro: noqa[...]`` inside a string literal is not a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

#: Matches the per-line marker — a hash, ``repro: noqa``, and a
#: bracketed code list (one or more codes, comma-separated).
_NOQA = re.compile(r"#\s*repro:\s*noqa\s*\[\s*([A-Za-z0-9_,\s]+?)\s*\]")


@dataclass
class Suppressions:
    """The suppression table of one source file."""

    #: line -> codes suppressed on that line.
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: (line, code) pairs in source order, for unused-suppression checks.
    declared: List[Tuple[int, str]] = field(default_factory=list)
    #: (line, code) pairs that actually silenced a violation.
    used: Set[Tuple[int, str]] = field(default_factory=set)

    def covers(self, line: int, code: str) -> bool:
        """True (and marked used) if ``code`` is suppressed on ``line``."""
        if code in self.by_line.get(line, ()):
            self.used.add((line, code))
            return True
        return False

    def unused(self) -> List[Tuple[int, str]]:
        return [(line, code) for line, code in self.declared
                if (line, code) not in self.used]


def scan_suppressions(source: str) -> Suppressions:
    """Extract the suppression table from ``source``.

    Tolerates tokenization failures (the caller reports the syntax
    error separately): an unreadable file simply has no suppressions.
    """
    table = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA.search(tok.string)
            if match is None:
                continue
            line = tok.start[0]
            codes = {c.strip().upper()
                     for c in match.group(1).split(",") if c.strip()}
            table.by_line.setdefault(line, set()).update(codes)
            for code in sorted(codes):
                table.declared.append((line, code))
    except (tokenize.TokenizeError, SyntaxError, IndentationError):
        pass
    return table
