"""On-disk result cache.

Layout: one JSON-lines file per experiment name under the cache root::

    <cache_dir>/
        figure1.jsonl
        thm44-tradeoff.jsonl

Each line is one completed cell::

    {"key": "<sha256 digest>", "cell": {...}, "metrics": {...}}

The digest covers the *entire* cell identity (task, algorithm, graph,
params, knowledge, wakeup, ids, congest limit, round limit, trial, and
the derived seed — see :meth:`CellSpec.cache_key`), so a lookup can
never return results for a different configuration.  Records are
append-only; a re-run of a cell overwrites nothing and the newest record
wins at load time (they are identical by construction, since the cell
pins all randomness).

The cache is written only by the parent runner process — workers return
metrics to it — so no file locking is needed.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, Optional

from .spec import CellSpec, canonical_json


def _safe_filename(name: str) -> str:
    """Experiment name → filesystem-safe stem."""
    stem = re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-.")
    return stem or "experiment"


class ResultCache:
    """Append-only JSONL store of cell results, keyed by content digest."""

    def __init__(self, root: str) -> None:
        self.root = root
        self._loaded: Dict[str, Dict[str, Dict[str, Any]]] = {}

    def path_for(self, experiment: str) -> str:
        return os.path.join(self.root, f"{_safe_filename(experiment)}.jsonl")

    # ------------------------------------------------------------------
    @staticmethod
    def _scan_file(path: str) -> Dict[str, Dict[str, Any]]:
        """Parse one JSONL cache file into ``key -> record``.

        Blank and torn lines (an interrupted run's final write) are
        skipped; duplicate keys keep the newest record (identical by
        construction, since the cell pins all randomness).
        """
        records: Dict[str, Dict[str, Any]] = {}
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn write from an interrupted run
                    key = record.get("key")
                    if isinstance(key, str) and "metrics" in record:
                        records[key] = record
        return records

    def _records(self, experiment: str) -> Dict[str, Dict[str, Any]]:
        if experiment in self._loaded:
            return self._loaded[experiment]
        records = self._scan_file(self.path_for(experiment))
        self._loaded[experiment] = records
        return records

    # ------------------------------------------------------------------
    def get(self, cell: CellSpec) -> Optional[Dict[str, Any]]:
        """Return the cached metrics for ``cell``, or None on a miss."""
        record = self._records(cell.experiment).get(cell.digest())
        if record is None:
            return None
        return record["metrics"]

    def put(self, cell: CellSpec, metrics: Dict[str, Any]) -> None:
        """Persist one cell's metrics (append + update the in-memory view)."""
        record = {"key": cell.digest(), "cell": cell.to_json(),
                  "metrics": metrics}
        os.makedirs(self.root, exist_ok=True)
        path = self.path_for(cell.experiment)
        # A torn final line (interrupted run, no trailing newline) must
        # not swallow this append too: terminate the fragment first so
        # only the already-lost record stays lost.
        needs_newline = False
        if os.path.exists(path) and os.path.getsize(path) > 0:
            with open(path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                needs_newline = fh.read(1) != b"\n"
        with open(path, "a", encoding="utf-8") as fh:
            if needs_newline:
                fh.write("\n")
            fh.write(canonical_json(record) + "\n")
        self._records(cell.experiment)[record["key"]] = record

    def __len__(self) -> int:
        """Distinct records stored under the cache root, on disk.

        Every :meth:`put` writes through to disk before updating the
        in-memory view, so the files are authoritative — this counts a
        warm cache correctly even before any experiment is loaded (the
        old implementation summed only lazily-loaded experiments and
        reported 0 for a cold handle on a full cache directory).
        """
        if not os.path.isdir(self.root):
            return 0
        # put() writes through before updating _loaded, so the memory
        # view of a loaded experiment is always in sync with its file —
        # only files never loaded by this handle need a disk scan.
        loaded_paths = {self.path_for(exp): recs
                        for exp, recs in self._loaded.items()}
        total = 0
        for entry in sorted(os.listdir(self.root)):
            if not entry.endswith(".jsonl"):
                continue
            path = os.path.join(self.root, entry)
            recs = loaded_paths.get(path)
            total += len(recs) if recs is not None else \
                len(self._scan_file(path))
        return total
