"""On-disk result cache.

Layout: one JSON-lines file per experiment name under the cache root::

    <cache_dir>/
        figure1.jsonl
        thm44-tradeoff.jsonl

Each line is one completed cell::

    {"key": "<sha256 digest>", "cell": {...}, "metrics": {...}}

The digest covers the *entire* cell identity (task, algorithm, graph,
params, knowledge, wakeup, ids, congest limit, round limit, trial, and
the derived seed — see :meth:`CellSpec.cache_key`), so a lookup can
never return results for a different configuration.  Records are
append-only; a re-run of a cell overwrites nothing and the newest record
wins at load time (they are identical by construction, since the cell
pins all randomness).

The cache is written only by the parent runner process — workers return
metrics to it — so no file locking is needed.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, Optional

from .spec import CellSpec, canonical_json


def _safe_filename(name: str) -> str:
    """Experiment name → filesystem-safe stem."""
    stem = re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-.")
    return stem or "experiment"


class ResultCache:
    """Append-only JSONL store of cell results, keyed by content digest."""

    def __init__(self, root: str) -> None:
        self.root = root
        self._loaded: Dict[str, Dict[str, Dict[str, Any]]] = {}

    def path_for(self, experiment: str) -> str:
        return os.path.join(self.root, f"{_safe_filename(experiment)}.jsonl")

    # ------------------------------------------------------------------
    def _records(self, experiment: str) -> Dict[str, Dict[str, Any]]:
        if experiment in self._loaded:
            return self._loaded[experiment]
        records: Dict[str, Dict[str, Any]] = {}
        path = self.path_for(experiment)
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn write from an interrupted run
                    key = record.get("key")
                    if isinstance(key, str) and "metrics" in record:
                        records[key] = record
        self._loaded[experiment] = records
        return records

    # ------------------------------------------------------------------
    def get(self, cell: CellSpec) -> Optional[Dict[str, Any]]:
        """Return the cached metrics for ``cell``, or None on a miss."""
        record = self._records(cell.experiment).get(cell.digest())
        if record is None:
            return None
        return record["metrics"]

    def put(self, cell: CellSpec, metrics: Dict[str, Any]) -> None:
        """Persist one cell's metrics (append + update the in-memory view)."""
        record = {"key": cell.digest(), "cell": cell.to_json(),
                  "metrics": metrics}
        os.makedirs(self.root, exist_ok=True)
        with open(self.path_for(cell.experiment), "a", encoding="utf-8") as fh:
            fh.write(canonical_json(record) + "\n")
        self._records(cell.experiment)[record["key"]] = record

    def __len__(self) -> int:
        return sum(len(recs) for recs in self._loaded.values())
