"""On-disk result cache.

Layout: one JSON-lines file per experiment name under the cache root::

    <cache_dir>/
        figure1.jsonl
        thm44-tradeoff.jsonl

Each line is one completed cell::

    {"key": "<sha256 digest>", "cell": {...}, "metrics": {...}}

The digest covers the *entire* cell identity (task, algorithm, graph,
params, knowledge, wakeup, ids, congest limit, round limit, trial, and
the derived seed — see :meth:`CellSpec.cache_key`), so a lookup can
never return results for a different configuration.  Records are
append-only; a re-run of a cell overwrites nothing and the newest record
wins at load time (they are identical by construction, since the cell
pins all randomness).

The cache is written only by the parent runner process — workers return
metrics to it — so no file locking is needed.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, Optional

from .spec import CellSpec, canonical_json


def _safe_filename(name: str) -> str:
    """Experiment name → filesystem-safe stem."""
    stem = re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-.")
    return stem or "experiment"


class ResultCache:
    """Append-only JSONL store of cell results, keyed by content digest."""

    def __init__(self, root: str) -> None:
        self.root = root
        self._loaded: Dict[str, Dict[str, Dict[str, Any]]] = {}
        #: Memoized len(); None until first computed, then maintained
        #: incrementally by put() instead of rescanning the cache root.
        self._len: Optional[int] = None
        self._hits = 0
        self._misses = 0
        self._appends = 0

    def path_for(self, experiment: str) -> str:
        return os.path.join(self.root, f"{_safe_filename(experiment)}.jsonl")

    # ------------------------------------------------------------------
    @staticmethod
    def _scan_file(path: str) -> Dict[str, Dict[str, Any]]:
        """Parse one JSONL cache file into ``key -> record``.

        Blank and torn lines (an interrupted run's final write) are
        skipped; duplicate keys keep the newest record (identical by
        construction, since the cell pins all randomness).
        """
        records: Dict[str, Dict[str, Any]] = {}
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn write from an interrupted run
                    key = record.get("key")
                    if isinstance(key, str) and "metrics" in record:
                        records[key] = record
        return records

    def _records(self, experiment: str) -> Dict[str, Dict[str, Any]]:
        if experiment in self._loaded:
            return self._loaded[experiment]
        records = self._scan_file(self.path_for(experiment))
        self._loaded[experiment] = records
        return records

    # ------------------------------------------------------------------
    def get(self, cell: CellSpec) -> Optional[Dict[str, Any]]:
        """Return the cached metrics for ``cell``, or None on a miss."""
        record = self._records(cell.experiment).get(cell.digest())
        if record is None:
            self._misses += 1
            return None
        self._hits += 1
        return record["metrics"]

    def put(self, cell: CellSpec, metrics: Dict[str, Any]) -> None:
        """Persist one cell's metrics (append + update the in-memory view)."""
        record = {"key": cell.digest(), "cell": cell.to_json(),
                  "metrics": metrics}
        os.makedirs(self.root, exist_ok=True)
        path = self.path_for(cell.experiment)
        # A torn final line (interrupted run, no trailing newline) must
        # not swallow this append too: terminate the fragment first so
        # only the already-lost record stays lost.
        needs_newline = False
        if os.path.exists(path) and os.path.getsize(path) > 0:
            with open(path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                needs_newline = fh.read(1) != b"\n"
        with open(path, "a", encoding="utf-8") as fh:
            if needs_newline:
                fh.write("\n")
            fh.write(canonical_json(record) + "\n")
        records = self._records(cell.experiment)
        if self._len is not None and record["key"] not in records:
            self._len += 1
        records[record["key"]] = record
        self._appends += 1

    def stats(self) -> Dict[str, int]:
        """Lookup/write counters for this handle's lifetime:
        ``hits`` (get served), ``misses`` (get empty), ``appends``
        (records written by :meth:`put`)."""
        return {"hits": self._hits, "misses": self._misses,
                "appends": self._appends}

    def __len__(self) -> int:
        """Distinct records stored under the cache root, on disk.

        Every :meth:`put` writes through to disk before updating the
        in-memory view, so the files are authoritative — this counts a
        warm cache correctly even before any experiment is loaded (the
        old implementation summed only lazily-loaded experiments and
        reported 0 for a cold handle on a full cache directory).

        The full-root scan runs **once** per handle; afterwards the
        count is maintained incrementally by :meth:`put` (the old
        implementation re-listed and re-parsed every cache file on
        every call, turning ``len(cache)`` inside a sweep loop into
        quadratic disk work).  Writes by *other* processes after the
        first call are not observed — construct a fresh handle for a
        cold recount.
        """
        if self._len is not None:
            return self._len
        if not os.path.isdir(self.root):
            # Not memoized: a first put() will create the root, and a
            # pre-creation len() must not pin the count at 0.
            return 0
        # put() writes through before updating _loaded, so the memory
        # view of a loaded experiment is always in sync with its file —
        # only files never loaded by this handle need a disk scan.
        loaded_paths = {self.path_for(exp): recs
                        for exp, recs in self._loaded.items()}
        total = 0
        for entry in sorted(os.listdir(self.root)):
            if not entry.endswith(".jsonl"):
                continue
            path = os.path.join(self.root, entry)
            recs = loaded_paths.get(path)
            total += len(recs) if recs is not None else \
                len(self._scan_file(path))
        self._len = total
        return total
