"""Declarative experiment specifications.

An :class:`ExperimentSpec` names *what* to measure — a task, a grid of
algorithms × graphs × extra parameter axes, a trial count — and
:meth:`ExperimentSpec.expand` turns it into the flat list of
:class:`CellSpec` cells the runner executes.  Cells are the atom of the
engine: one cell = one simulation (or one constructed object), fully
described by picklable, JSON-serializable fields.

Two derived identities drive everything downstream:

* ``cell.digest()`` — a SHA-256 content hash of the canonical cell JSON.
  The on-disk cache is keyed by it, so *any* change to the cell (seed,
  knowledge, congest limit, ...) is a cache miss and an unchanged cell
  is a free hit.
* ``derive_seed(base_seed, key)`` — the per-cell master seed, computed
  from the spec's base seed and the cell's identity (not from worker
  rank or execution order).  Serial and multiprocess runs therefore
  consume *identical* randomness and produce bit-identical results.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Bump when the cell schema or seed derivation changes incompatibly;
#: part of every digest, so stale cache entries can never be confused
#: for current ones.
#:
#: v2: election metrics rows gained ``rounds_executed`` (event rounds
#: actually run — work, vs. the ``rounds`` span) and negative-int
#: payload fields are charged ``bit_length() + 1`` instead of a flat 64
#: bits, so v1 cache rows would silently mix stale bit counts and
#: missing columns into new sweeps.
SCHEMA_VERSION = 2


def canonical_json(obj: Any) -> str:
    """Stable, whitespace-free JSON used for hashing and cache records."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def derive_seed(base_seed: int, key: str) -> int:
    """Map (base seed, cell identity) to a 63-bit master seed.

    Uses SHA-256 rather than ``hash()`` so the value is stable across
    processes and interpreter runs (``PYTHONHASHSEED`` does not leak in).
    """
    blob = f"repro-cell-v{SCHEMA_VERSION}|{base_seed}|{key}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") >> 1


@dataclass(frozen=True)
class CellSpec:
    """One fully-determined point of an experiment grid."""

    experiment: str
    task: str
    algorithm: Optional[str]
    graph: Optional[str]
    trial: int
    seed: int
    params: Tuple[Tuple[str, Any], ...] = ()
    knowledge: Tuple[Tuple[str, int], ...] = ()
    auto_knowledge: Tuple[str, ...] = ()
    wakeup: Optional[str] = None
    ids: Optional[str] = None
    congest_bits: Optional[int] = None
    max_rounds: Optional[int] = None

    # -- identity ------------------------------------------------------
    def _identity(self, *, with_trial: bool, with_seed: bool) -> Dict[str, Any]:
        ident: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "task": self.task,
            "algorithm": self.algorithm,
            "graph": self.graph,
            "params": {k: v for k, v in self.params},
            "knowledge": {k: v for k, v in self.knowledge},
            "auto_knowledge": list(self.auto_knowledge),
            "wakeup": self.wakeup,
            "ids": self.ids,
            "congest_bits": self.congest_bits,
            "max_rounds": self.max_rounds,
        }
        if with_trial:
            ident["trial"] = self.trial
        if with_seed:
            ident["seed"] = self.seed
        return ident

    def identity_key(self) -> str:
        """Canonical identity *before* seed derivation (hashes to the seed)."""
        return canonical_json(self._identity(with_trial=True, with_seed=False))

    def cache_key(self) -> str:
        """Canonical identity including the derived seed (hashes to the digest)."""
        return canonical_json(self._identity(with_trial=True, with_seed=True))

    def group_key(self) -> str:
        """Identity shared by all trials of one configuration (aggregation key)."""
        return canonical_json(self._identity(with_trial=False, with_seed=False))

    def digest(self) -> str:
        """SHA-256 content hash — the cache key for this cell."""
        return hashlib.sha256(self.cache_key().encode()).hexdigest()

    @property
    def param_dict(self) -> Dict[str, Any]:
        return {k: v for k, v in self.params}

    @property
    def knowledge_dict(self) -> Dict[str, int]:
        return {k: v for k, v in self.knowledge}

    def to_json(self) -> Dict[str, Any]:
        """Full cell record as stored alongside cached metrics."""
        record = self._identity(with_trial=True, with_seed=True)
        record["experiment"] = self.experiment
        return record


def _freeze_mapping(mapping: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted((mapping or {}).items()))


@dataclass
class ExperimentSpec:
    """Declarative description of a sweep.

    Parameters
    ----------
    name:
        Experiment name; groups cache records on disk (one JSONL file
        per name under the cache directory).
    task:
        Name of a registered task (see :mod:`repro.experiments.tasks`),
        or a ``"module:function"`` dotted path.  The default ``elect``
        runs one leader election per cell.
    algorithms:
        Registry names (``repro.api.ALGORITHMS``) forming one grid axis.
        Tasks that need no algorithm leave the default ``(None,)``.
    graphs:
        Compact graph-spec strings (:func:`repro.graphs.parse_graph_spec`)
        forming a second axis; ``(None,)`` for graph-free tasks.
    params:
        Extra named axes, e.g. ``{"f": [1.0, 2.0, 4.0]}``.  Axes are
        crossed; zipped pairs are expressed as one axis of compact
        strings (e.g. ``{"half": ["14:24", "20:48"]}``).
    trials:
        Independent repetitions of every configuration; trial index is
        part of the cell identity, so each gets its own derived seed.
    seed:
        Base seed; combined with each cell's identity via
        :func:`derive_seed`.
    knowledge:
        Explicit knowledge overrides granted to every node (auto-derived
        "n"/"m"/"D" per the registry's needs otherwise).
    auto_knowledge:
        Extra knowledge keys ("n", "m", "D") to derive from each cell's
        own graph, beyond what the algorithm's registry entry requires —
        e.g. grant flood-max the true diameter so it stops at D + O(1).
    wakeup:
        Wakeup-model spec string (``"simultaneous"``,
        ``"adversarial[:frac[:max_delay]]"``) or None for the default.
    ids:
        ID-assignment spec string (``"random"``, ``"sequential[:start]"``,
        ``"reversed[:start]"``) or None for the default.
    congest_bits / max_rounds:
        Forwarded to the simulator.
    """

    name: str
    task: str = "elect"
    algorithms: Sequence[Optional[str]] = (None,)
    graphs: Sequence[Optional[str]] = (None,)
    params: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    trials: int = 1
    seed: int = 0
    knowledge: Mapping[str, int] = field(default_factory=dict)
    auto_knowledge: Sequence[str] = ()
    wakeup: Optional[str] = None
    ids: Optional[str] = None
    congest_bits: Optional[int] = None
    max_rounds: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("ExperimentSpec.name must be non-empty")
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        if not self.algorithms:
            raise ValueError("algorithms axis must be non-empty (use (None,))")
        if not self.graphs:
            raise ValueError("graphs axis must be non-empty (use (None,))")
        for axis, values in self.params.items():
            if not values:
                raise ValueError(f"param axis {axis!r} has no values")
        unknown = set(self.auto_knowledge) - {"n", "m", "D"}
        if unknown:
            # A typo'd key would silently never be granted while still
            # perturbing the cell digest and derived seed.
            raise ValueError(f"unknown auto_knowledge keys: "
                             f"{sorted(unknown)} (valid: n, m, D)")

    # ------------------------------------------------------------------
    def expand(self) -> List[CellSpec]:
        """Expand the grid: algorithms × graphs × params × trials.

        Expansion order is deterministic (axes in declaration order,
        param axes sorted by name) and defines the canonical result
        order of a sweep.
        """
        axis_names = sorted(self.params)
        axis_values = [list(self.params[name]) for name in axis_names]
        knowledge = _freeze_mapping(self.knowledge)
        auto_knowledge = tuple(sorted(self.auto_knowledge))
        cells: List[CellSpec] = []
        for algorithm in self.algorithms:
            for graph in self.graphs:
                for combo in itertools.product(*axis_values):
                    params = tuple(zip(axis_names, combo))
                    for trial in range(self.trials):
                        cell = CellSpec(
                            experiment=self.name,
                            task=self.task,
                            algorithm=algorithm,
                            graph=graph,
                            trial=trial,
                            seed=0,
                            params=params,
                            knowledge=knowledge,
                            auto_knowledge=auto_knowledge,
                            wakeup=self.wakeup,
                            ids=self.ids,
                            congest_bits=self.congest_bits,
                            max_rounds=self.max_rounds,
                        )
                        cells.append(replace(
                            cell,
                            seed=derive_seed(self.seed, cell.identity_key())))
        return cells
