"""Declarative experiment specifications.

An :class:`ExperimentSpec` names *what* to measure — a task, a grid of
algorithms × graphs × extra parameter axes, a trial count — and
:meth:`ExperimentSpec.expand` turns it into the flat list of
:class:`CellSpec` cells the runner executes.  Cells are the atom of the
engine: one cell = one simulation (or one constructed object), fully
described by picklable, JSON-serializable fields.

Two derived identities drive everything downstream:

* ``cell.digest()`` — a SHA-256 content hash of the canonical cell JSON.
  The on-disk cache is keyed by it, so *any* change to the cell (seed,
  knowledge, congest limit, ...) is a cache miss and an unchanged cell
  is a free hit.
* ``derive_seed(base_seed, key)`` — the per-cell master seed, computed
  from the spec's base seed and the cell's identity (not from worker
  rank or execution order).  Serial and multiprocess runs therefore
  consume *identical* randomness and produce bit-identical results.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Bump when the cell schema or seed derivation changes incompatibly;
#: part of every digest, so stale cache entries can never be confused
#: for current ones.
#:
#: v2: election metrics rows gained ``rounds_executed`` (event rounds
#: actually run — work, vs. the ``rounds`` span) and negative-int
#: payload fields are charged ``bit_length() + 1`` instead of a flat 64
#: bits, so v1 cache rows would silently mix stale bit counts and
#: missing columns into new sweeps.
#:
#: v3: cells carry an execution model (delay/crash/loss/model_seed, see
#: :mod:`repro.sim.models`) as part of their identity, and election
#: rows gained ``messages_delivered``/``messages_dropped``/``crashes``/
#: ``success_surviving`` — v2 rows lack both the model key and the
#: delivery columns, so they must never satisfy a v3 lookup.
#:
#: v4: ``Network.build`` auto-selects lazy analytic port tables for
#: large dense implicit topologies (n > 2048, avg degree > 64), which
#: draws a *different* (still deterministic) port permutation from the
#: same seed than the materialized builder did — a v3 row for e.g.
#: ``complete:4096`` no longer describes the network a v4 run would
#: simulate, so it must never satisfy a v4 lookup.
SCHEMA_VERSION = 4


def canonical_json(obj: Any) -> str:
    """Stable, whitespace-free JSON used for hashing and cache records."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def derive_seed(base_seed: int, key: str) -> int:
    """Map (base seed, cell identity) to a 63-bit master seed.

    Uses SHA-256 rather than ``hash()`` so the value is stable across
    processes and interpreter runs (``PYTHONHASHSEED`` does not leak in).
    """
    blob = f"repro-cell-v{SCHEMA_VERSION}|{base_seed}|{key}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") >> 1


@dataclass(frozen=True)
class CellSpec:
    """One fully-determined point of an experiment grid."""

    experiment: str
    task: str
    algorithm: Optional[str]
    graph: Optional[str]
    trial: int
    seed: int
    params: Tuple[Tuple[str, Any], ...] = ()
    knowledge: Tuple[Tuple[str, int], ...] = ()
    auto_knowledge: Tuple[str, ...] = ()
    wakeup: Optional[str] = None
    ids: Optional[str] = None
    congest_bits: Optional[int] = None
    max_rounds: Optional[int] = None
    #: Execution-model knobs (canonical spec strings / rate — see
    #: :mod:`repro.sim.models`); all part of the cell identity, so two
    #: cells differing only in their adversary never share cache rows.
    delay: Optional[str] = None
    crash: Optional[str] = None
    loss: Optional[float] = None
    model_seed: int = 0
    #: Engine backend (:mod:`repro.sim.backend`), normalized so the
    #: default is ``None``.  Deliberately NOT part of the cell identity:
    #: backends are equivalent-or-absent (bit-identical results or
    #: ``BackendUnsupported``), so the same cache row is valid whichever
    #: engine produced it and pre-backend rows stay usable.  This is why
    #: no SCHEMA_VERSION bump accompanies the field.
    backend: Optional[str] = None

    # -- identity ------------------------------------------------------
    def _identity(self, *, with_trial: bool, with_seed: bool) -> Dict[str, Any]:
        ident: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "task": self.task,
            "algorithm": self.algorithm,
            "graph": self.graph,
            "params": {k: v for k, v in self.params},
            "knowledge": {k: v for k, v in self.knowledge},
            "auto_knowledge": list(self.auto_knowledge),
            "wakeup": self.wakeup,
            "ids": self.ids,
            "congest_bits": self.congest_bits,
            "max_rounds": self.max_rounds,
            "model": {"delay": self.delay, "crash": self.crash,
                      "loss": self.loss, "seed": self.model_seed},
        }
        if with_trial:
            ident["trial"] = self.trial
        if with_seed:
            ident["seed"] = self.seed
        return ident

    def identity_key(self) -> str:
        """Canonical identity *before* seed derivation (hashes to the seed)."""
        return canonical_json(self._identity(with_trial=True, with_seed=False))

    def cache_key(self) -> str:
        """Canonical identity including the derived seed (hashes to the digest)."""
        return canonical_json(self._identity(with_trial=True, with_seed=True))

    def group_key(self) -> str:
        """Identity shared by all trials of one configuration (aggregation key)."""
        return canonical_json(self._identity(with_trial=False, with_seed=False))

    def digest(self) -> str:
        """SHA-256 content hash — the cache key for this cell."""
        return hashlib.sha256(self.cache_key().encode()).hexdigest()

    @property
    def param_dict(self) -> Dict[str, Any]:
        return {k: v for k, v in self.params}

    @property
    def knowledge_dict(self) -> Dict[str, int]:
        return {k: v for k, v in self.knowledge}

    @property
    def model_dict(self) -> Dict[str, Any]:
        """Non-default execution-model knobs (labels, group reporting)."""
        out: Dict[str, Any] = {}
        if self.delay is not None:
            out["delay"] = self.delay
        if self.crash is not None:
            out["crash"] = self.crash
        if self.loss is not None:
            out["loss"] = self.loss
        if self.model_seed:
            out["model_seed"] = self.model_seed
        return out

    def to_json(self) -> Dict[str, Any]:
        """Full cell record as stored alongside cached metrics."""
        record = self._identity(with_trial=True, with_seed=True)
        record["experiment"] = self.experiment
        if self.backend is not None:
            # Provenance only — never part of the identity/digest.
            record["backend"] = self.backend
        return record


def _freeze_mapping(mapping: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted((mapping or {}).items()))


def _axis(value: Any, name: str) -> Tuple[Any, ...]:
    """Normalize a scalar-or-sequence spec field into a grid axis."""
    if value is None or isinstance(value, (str, int, float)):
        return (value,)
    values = tuple(value)
    if not values:
        raise ValueError(f"{name} axis has no values (use None for default)")
    return values


@dataclass
class ExperimentSpec:
    """Declarative description of a sweep.

    Parameters
    ----------
    name:
        Experiment name; groups cache records on disk (one JSONL file
        per name under the cache directory).
    task:
        Name of a registered task (see :mod:`repro.experiments.tasks`),
        or a ``"module:function"`` dotted path.  The default ``elect``
        runs one leader election per cell.
    algorithms:
        Registry names (``repro.api.ALGORITHMS``) forming one grid axis.
        Tasks that need no algorithm leave the default ``(None,)``.
    graphs:
        Compact graph-spec strings (:func:`repro.graphs.parse_graph_spec`)
        forming a second axis; ``(None,)`` for graph-free tasks.
    params:
        Extra named axes, e.g. ``{"f": [1.0, 2.0, 4.0]}``.  Axes are
        crossed; zipped pairs are expressed as one axis of compact
        strings (e.g. ``{"half": ["14:24", "20:48"]}``).
    trials:
        Independent repetitions of every configuration; trial index is
        part of the cell identity, so each gets its own derived seed.
    seed:
        Base seed; combined with each cell's identity via
        :func:`derive_seed`.
    knowledge:
        Explicit knowledge overrides granted to every node (auto-derived
        "n"/"m"/"D" per the registry's needs otherwise).
    auto_knowledge:
        Extra knowledge keys ("n", "m", "D") to derive from each cell's
        own graph, beyond what the algorithm's registry entry requires —
        e.g. grant flood-max the true diameter so it stops at D + O(1).
    wakeup:
        Wakeup-model spec string (``"simultaneous"``,
        ``"adversarial[:frac[:max_delay]]"``) or None for the default.
    ids:
        ID-assignment spec string (``"random"``, ``"sequential[:start]"``,
        ``"reversed[:start]"``) or None for the default.
    congest_bits / max_rounds:
        Forwarded to the simulator.
    delay / crash / loss:
        Execution-model axes (:mod:`repro.sim.models`).  Each accepts a
        single spec value *or* a sequence of values forming a grid axis
        — e.g. ``delay=["1", "uniform:2", "uniform:4"]`` crosses three
        delay regimes into the sweep.  Values are canonicalized
        (``delay=1``, ``loss=0``, ``crash=0`` all mean "default"), so a
        default-valued point shares cache rows with model-free sweeps.
    model_seed:
        Seed of the model's own adversary randomness (delay/loss draws,
        crash schedules), mixed with each cell's derived seed.  Part of
        the cell identity.
    backend:
        Engine backend name for every cell (``"event-loop"`` default,
        ``"columnar"``).  An execution detail, not an identity: results
        are backend-independent by construction, so cells keep their
        digests, seeds, and cache rows whichever engine runs them.
    """

    name: str
    task: str = "elect"
    algorithms: Sequence[Optional[str]] = (None,)
    graphs: Sequence[Optional[str]] = (None,)
    params: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    trials: int = 1
    seed: int = 0
    knowledge: Mapping[str, int] = field(default_factory=dict)
    auto_knowledge: Sequence[str] = ()
    wakeup: Optional[str] = None
    ids: Optional[str] = None
    congest_bits: Optional[int] = None
    max_rounds: Optional[int] = None
    delay: Any = None
    crash: Any = None
    loss: Any = None
    model_seed: int = 0
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("ExperimentSpec.name must be non-empty")
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        if not self.algorithms:
            raise ValueError("algorithms axis must be non-empty (use (None,))")
        if not self.graphs:
            raise ValueError("graphs axis must be non-empty (use (None,))")
        for axis, values in self.params.items():
            if not values:
                raise ValueError(f"param axis {axis!r} has no values")
        unknown = set(self.auto_knowledge) - {"n", "m", "D"}
        if unknown:
            # A typo'd key would silently never be granted while still
            # perturbing the cell digest and derived seed.
            raise ValueError(f"unknown auto_knowledge keys: "
                             f"{sorted(unknown)} (valid: n, m, D)")
        # Canonicalize the backend eagerly too: a typo'd name should
        # fail here, and the default must normalize to None so cells
        # keep their backend-free identity.
        from ..sim.backend import normalize_backend
        self.backend = normalize_backend(self.backend)
        # Canonicalize the execution-model axes eagerly so malformed
        # specs fail at spec construction, not mid-sweep in a worker.
        from ..sim.models import normalize_crash, normalize_delay, normalize_loss

        # dict.fromkeys dedupes values that canonicalize to the same
        # spec (e.g. delay=[1, "fixed:1"]) — duplicate cells would
        # share a digest and double-count trials in the aggregates.
        self._delay_axis = tuple(dict.fromkeys(
            normalize_delay(v) for v in _axis(self.delay, "delay")))
        self._crash_axis = tuple(dict.fromkeys(
            normalize_crash(v) for v in _axis(self.crash, "crash")))
        self._loss_axis = tuple(dict.fromkeys(
            normalize_loss(v) for v in _axis(self.loss, "loss")))

    # ------------------------------------------------------------------
    def expand(self) -> List[CellSpec]:
        """Expand the grid: algorithms × graphs × params × trials.

        Expansion order is deterministic (axes in declaration order,
        param axes sorted by name) and defines the canonical result
        order of a sweep.
        """
        axis_names = sorted(self.params)
        axis_values = [list(self.params[name]) for name in axis_names]
        knowledge = _freeze_mapping(self.knowledge)
        auto_knowledge = tuple(sorted(self.auto_knowledge))
        cells: List[CellSpec] = []
        model_grid = list(itertools.product(
            self._delay_axis, self._crash_axis, self._loss_axis))
        for algorithm in self.algorithms:
            for graph in self.graphs:
                for delay, crash, loss in model_grid:
                    # A model seed with no active adversary knob is
                    # inert; normalize it away so such cells keep the
                    # model-free identity (and its cache rows).
                    mseed = (self.model_seed
                             if any(v is not None
                                    for v in (delay, crash, loss)) else 0)
                    for combo in itertools.product(*axis_values):
                        params = tuple(zip(axis_names, combo))
                        for trial in range(self.trials):
                            cell = CellSpec(
                                experiment=self.name,
                                task=self.task,
                                algorithm=algorithm,
                                graph=graph,
                                trial=trial,
                                seed=0,
                                params=params,
                                knowledge=knowledge,
                                auto_knowledge=auto_knowledge,
                                wakeup=self.wakeup,
                                ids=self.ids,
                                congest_bits=self.congest_bits,
                                max_rounds=self.max_rounds,
                                delay=delay,
                                crash=crash,
                                loss=loss,
                                model_seed=mseed,
                                backend=self.backend,
                            )
                            cells.append(replace(
                                cell,
                                seed=derive_seed(self.seed,
                                                 cell.identity_key())))
        return cells
