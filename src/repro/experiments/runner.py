"""Grid execution: serial or multiprocess, cache-aware, deterministic.

The :class:`Runner` takes an :class:`ExperimentSpec`, expands it, serves
whatever it can from the on-disk cache, and executes the remaining cells
— either in-process or fanned out over a ``multiprocessing`` pool.

Determinism contract
--------------------
Every cell's randomness derives from the cell's own content (see
:func:`repro.experiments.spec.derive_seed`), never from worker identity
or scheduling, and results are reassembled in grid-expansion order
regardless of completion order.  A parallel run is therefore
bit-identical to a serial run of the same spec, and mixing cached and
fresh cells changes nothing.  Execution-model adversaries (delay,
crash, loss — :mod:`repro.sim.models`) are part of each cell's content:
their draws derive from ``(cell seed, model seed)``, so a modeled sweep
keeps the same contract — the runner itself never needs to know which
model a cell carries.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs.log import get_logger
from ..obs.telemetry import RunnerTelemetry
from .aggregate import GroupStats, aggregate
from .cache import ResultCache
from .spec import CellSpec, ExperimentSpec
from .tasks import resolve_task

log = get_logger("experiments")


def execute_cell(cell: CellSpec) -> Dict[str, Any]:
    """Run one cell to completion (also the worker entry point)."""
    return resolve_task(cell.task)(cell)


def _timed_execute_cell(cell: CellSpec) -> Tuple[Dict[str, Any], float]:
    """Worker entry point wrapping :func:`execute_cell` with its wall
    clock, measured inside the worker so pool overhead stays visible as
    the gap to the run's total wall.  Looks ``execute_cell`` up as a
    module global so tests monkeypatching it keep working.
    """
    t0 = time.perf_counter()
    metrics = execute_cell(cell)
    return metrics, time.perf_counter() - t0


@dataclass
class CellResult:
    """One executed (or cache-served) cell."""

    cell: CellSpec
    metrics: Dict[str, Any]
    cached: bool = False


@dataclass
class SweepResult:
    """Everything a sweep produced, in grid order."""

    spec: ExperimentSpec
    results: List[CellResult] = field(default_factory=list)
    #: Execution cost of the sweep (wall clocks, cache counters,
    #: worker utilization); filled in by :meth:`Runner.run`.
    telemetry: Optional[RunnerTelemetry] = None

    @property
    def cells(self) -> int:
        return len(self.results)

    @property
    def executed(self) -> int:
        """Cells actually simulated this run (0 on a full cache hit)."""
        return sum(not r.cached for r in self.results)

    @property
    def cached(self) -> int:
        return sum(r.cached for r in self.results)

    @property
    def metrics(self) -> List[Dict[str, Any]]:
        return [r.metrics for r in self.results]

    def groups(self) -> List[GroupStats]:
        """Aggregate per-trial cells into per-configuration statistics."""
        return aggregate(self.results)


class Runner:
    """Executes experiment grids.

    Parameters
    ----------
    cache_dir:
        Root directory for the JSONL result cache, or None to disable
        caching entirely.
    workers:
        Number of worker processes; 0 or 1 runs serially in-process.
    mp_context:
        ``multiprocessing`` start-method name.  Defaults to ``fork``
        where available (cheap, inherits registered custom tasks);
        ``spawn`` works for the built-in and dotted-path tasks.
    """

    def __init__(self, cache_dir: Optional[str] = None, *,
                 workers: int = 1,
                 mp_context: Optional[str] = None) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.workers = workers
        self._mp_context = mp_context

    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec, *,
            progress: Optional[Callable[[str], None]] = None,
            on_cell: Optional[Callable[[int, int], None]] = None) -> SweepResult:
        """Expand ``spec``, serve cache hits, execute misses, persist.

        ``progress`` receives occasional human-readable status strings
        (defaults to the ``repro.experiments`` INFO log).  ``on_cell``
        — when given — is called as ``on_cell(done, total)`` once after
        the cache scan and again after every executed cell, for live
        progress displays (:class:`repro.obs.ProgressLine`).
        """
        t0 = time.perf_counter()
        cells = spec.expand()
        report = progress if progress is not None else \
            (lambda msg: log.info("%s", msg))

        slots: List[Optional[CellResult]] = [None] * len(cells)
        misses: List[int] = []
        for i, cell in enumerate(cells):
            hit = self.cache.get(cell) if self.cache is not None else None
            if hit is not None:
                slots[i] = CellResult(cell, hit, cached=True)
            else:
                misses.append(i)
        report(f"{spec.name}: {len(cells)} cells "
               f"({len(cells) - len(misses)} cached, {len(misses)} to run)")
        done = len(cells) - len(misses)
        if on_cell is not None:
            on_cell(done, len(cells))

        cell_walls: List[float] = []
        if misses:
            # Results stream back in input order and are persisted one by
            # one, so an interrupted sweep keeps every finished cell.
            outputs = self._iter_execute([cells[i] for i in misses])
            for i, (metrics, wall) in zip(misses, outputs):
                slots[i] = CellResult(cells[i], metrics, cached=False)
                cell_walls.append(wall)
                if self.cache is not None:
                    self.cache.put(cells[i], metrics)
                done += 1
                if on_cell is not None:
                    on_cell(done, len(cells))

        telemetry = RunnerTelemetry(
            cells=len(cells), cached=len(cells) - len(misses),
            executed=len(misses), wall_s=time.perf_counter() - t0,
            cell_walls=cell_walls,
            workers=self._pool_size(len(misses)),
            cache=self.cache.stats() if self.cache is not None else None)
        log.debug("%s: %s", spec.name, telemetry.summary())
        return SweepResult(spec=spec,
                           results=[s for s in slots if s is not None],
                           telemetry=telemetry)

    # ------------------------------------------------------------------
    def _pool_size(self, pending: int) -> int:
        """Worker processes a batch of ``pending`` cells would use."""
        if self.workers <= 1 or pending <= 1:
            return 1
        return min(self.workers, pending, max(1, (os.cpu_count() or 2)))

    def _iter_execute(self, cells: List[CellSpec]):
        """Yield ``(metrics, worker wall seconds)`` per cell, in order."""
        if self.workers <= 1 or len(cells) <= 1:
            for cell in cells:
                yield _timed_execute_cell(cell)
            return
        method = self._mp_context
        if method is None:
            method = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                      else None)
        ctx = multiprocessing.get_context(method)
        procs = self._pool_size(len(cells))
        with ctx.Pool(processes=procs) as pool:
            # imap (not imap_unordered) so outputs line up with inputs:
            # completion order never leaks into result order.
            yield from pool.imap(_timed_execute_cell, cells, chunksize=1)


def run_sweep(spec: ExperimentSpec, *,
              cache_dir: Optional[str] = None,
              workers: int = 1,
              progress: Optional[Callable[[str], None]] = None,
              on_cell: Optional[Callable[[int, int], None]] = None
              ) -> SweepResult:
    """One-call sweep: build a :class:`Runner` and run ``spec``."""
    runner = Runner(cache_dir=cache_dir, workers=workers)
    return runner.run(spec, progress=progress, on_cell=on_cell)
