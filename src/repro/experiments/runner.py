"""Grid execution: serial or multiprocess, cache-aware, deterministic.

The :class:`Runner` takes an :class:`ExperimentSpec`, expands it, serves
whatever it can from the on-disk cache, and executes the remaining cells
— either in-process or fanned out over a ``multiprocessing`` pool.

Determinism contract
--------------------
Every cell's randomness derives from the cell's own content (see
:func:`repro.experiments.spec.derive_seed`), never from worker identity
or scheduling, and results are reassembled in grid-expansion order
regardless of completion order.  A parallel run is therefore
bit-identical to a serial run of the same spec, and mixing cached and
fresh cells changes nothing.  Execution-model adversaries (delay,
crash, loss — :mod:`repro.sim.models`) are part of each cell's content:
their draws derive from ``(cell seed, model seed)``, so a modeled sweep
keeps the same contract — the runner itself never needs to know which
model a cell carries.
"""

from __future__ import annotations

import inspect
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs.log import get_logger
from ..obs.telemetry import RunnerTelemetry
from ..sim.backend import resolve_backend
from .aggregate import GroupStats, aggregate
from .cache import ResultCache
from .spec import CellSpec, ExperimentSpec
from .tasks import resolve_task

log = get_logger("experiments")


def execute_cell(cell: CellSpec) -> Dict[str, Any]:
    """Run one cell to completion (also the worker entry point)."""
    return resolve_task(cell.task)(cell)


def _timed_execute_cell(cell: CellSpec) -> Tuple[Dict[str, Any], float]:
    """Worker entry point wrapping :func:`execute_cell` with its wall
    clock, measured inside the worker so pool overhead stays visible as
    the gap to the run's total wall.  Looks ``execute_cell`` up as a
    module global so tests monkeypatching it keep working.
    """
    t0 = time.perf_counter()
    metrics = execute_cell(cell)
    return metrics, time.perf_counter() - t0


def _timed_execute_unit(unit) -> List[Tuple[Dict[str, Any], float]]:
    """Worker entry point for one execution unit.

    A unit is either a single :class:`CellSpec` (runs through
    :func:`execute_cell`, exactly as before) or a list of
    same-configuration ``elect`` cells executing as one backend batch
    call.  The batch request is rebuilt *inside* the worker from the
    picklable cells — process factories may be lambdas, so the request
    itself can never cross the pool boundary.  A batched unit's wall
    clock is attributed evenly across its cells, keeping per-cell wall
    telemetry comparable between batched and per-cell runs.
    """
    if isinstance(unit, CellSpec):
        return [_timed_execute_cell(unit)]
    from .tasks import execute_elect_group
    t0 = time.perf_counter()
    rows = execute_elect_group(unit)
    share = (time.perf_counter() - t0) / len(rows)
    return [(metrics, share) for metrics in rows]


def _note_adapter(on_cell: Optional[Callable]) -> Callable[..., None]:
    """Wrap ``on_cell`` so the runner can always pass a note string.

    Two-parameter callbacks (the documented ``on_cell(done, total)``
    shape) keep working unchanged; callbacks whose signature accepts a
    third parameter (e.g. :meth:`ProgressLine.update`) also receive the
    note, which is how ``--progress`` reports batched groups
    distinctly.
    """
    if on_cell is None:
        return lambda done, total, note="": None
    try:
        params = [p for p in inspect.signature(on_cell).parameters.values()
                  if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)]
        takes_note = len(params) >= 3
    except (TypeError, ValueError):  # builtins, odd callables
        takes_note = False
    if takes_note:
        return lambda done, total, note="": on_cell(done, total, note)
    return lambda done, total, note="": on_cell(done, total)


@dataclass
class CellResult:
    """One executed (or cache-served) cell."""

    cell: CellSpec
    metrics: Dict[str, Any]
    cached: bool = False


@dataclass
class SweepResult:
    """Everything a sweep produced, in grid order."""

    spec: ExperimentSpec
    results: List[CellResult] = field(default_factory=list)
    #: Execution cost of the sweep (wall clocks, cache counters,
    #: worker utilization); filled in by :meth:`Runner.run`.
    telemetry: Optional[RunnerTelemetry] = None

    @property
    def cells(self) -> int:
        return len(self.results)

    @property
    def executed(self) -> int:
        """Cells actually simulated this run (0 on a full cache hit)."""
        return sum(not r.cached for r in self.results)

    @property
    def cached(self) -> int:
        return sum(r.cached for r in self.results)

    @property
    def metrics(self) -> List[Dict[str, Any]]:
        return [r.metrics for r in self.results]

    def groups(self) -> List[GroupStats]:
        """Aggregate per-trial cells into per-configuration statistics."""
        return aggregate(self.results)


class Runner:
    """Executes experiment grids.

    Parameters
    ----------
    cache_dir:
        Root directory for the JSONL result cache, or None to disable
        caching entirely.
    workers:
        Number of worker processes; 0 or 1 runs serially in-process.
    mp_context:
        ``multiprocessing`` start-method name.  Defaults to ``fork``
        where available (cheap, inherits registered custom tasks);
        ``spawn`` works for the built-in and dotted-path tasks.
    """

    def __init__(self, cache_dir: Optional[str] = None, *,
                 workers: int = 1,
                 mp_context: Optional[str] = None,
                 batch_trials: bool = True) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.workers = workers
        self._mp_context = mp_context
        #: Run same-configuration ``elect`` trials as one batched engine
        #: call when the cell's backend advertises a vectorized trial
        #: axis.  Purely a speed knob: per-cell seeds, metrics rows, and
        #: cache digests are identical either way (the batch contract is
        #: bit-exactness with the sequential expansion).
        self.batch_trials = batch_trials

    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec, *,
            progress: Optional[Callable[[str], None]] = None,
            on_cell: Optional[Callable[[int, int], None]] = None) -> SweepResult:
        """Expand ``spec``, serve cache hits, execute misses, persist.

        ``progress`` receives occasional human-readable status strings
        (defaults to the ``repro.experiments`` INFO log).  ``on_cell``
        — when given — is called as ``on_cell(done, total)`` once after
        the cache scan and again after every executed cell, for live
        progress displays (:class:`repro.obs.ProgressLine`); callbacks
        accepting a third parameter additionally receive a short note
        when a batched group of trials lands at once.
        """
        t0 = time.perf_counter()
        cells = spec.expand()
        report = progress if progress is not None else \
            (lambda msg: log.info("%s", msg))
        notify = _note_adapter(on_cell)

        slots: List[Optional[CellResult]] = [None] * len(cells)
        misses: List[int] = []
        for i, cell in enumerate(cells):
            hit = self.cache.get(cell) if self.cache is not None else None
            if hit is not None:
                slots[i] = CellResult(cell, hit, cached=True)
            else:
                misses.append(i)
        report(f"{spec.name}: {len(cells)} cells "
               f"({len(cells) - len(misses)} cached, {len(misses)} to run)")
        done = len(cells) - len(misses)
        notify(done, len(cells))

        cell_walls: List[float] = []
        units: List[List[int]] = []
        batched_groups = batched_trials = 0
        if misses:
            units = self._plan_units(cells, misses)
            batched_groups = sum(1 for u in units if len(u) > 1)
            batched_trials = sum(len(u) for u in units if len(u) > 1)
            if batched_groups:
                report(f"{spec.name}: batching {batched_trials} trials "
                       f"as {batched_groups} vectorized group"
                       f"{'s' if batched_groups != 1 else ''}")
            # Results stream back in input order and are persisted one by
            # one, so an interrupted sweep keeps every finished cell.
            payloads = [cells[u[0]] if len(u) == 1
                        else [cells[i] for i in u] for u in units]
            outputs = self._iter_execute(payloads)
            for unit, rows in zip(units, outputs):
                for i, (metrics, wall) in zip(unit, rows):
                    slots[i] = CellResult(cells[i], metrics, cached=False)
                    cell_walls.append(wall)
                    if self.cache is not None:
                        self.cache.put(cells[i], metrics)
                done += len(unit)
                note = (f"{len(unit)} trials batched" if len(unit) > 1
                        else "")
                notify(done, len(cells), note)

        telemetry = RunnerTelemetry(
            cells=len(cells), cached=len(cells) - len(misses),
            executed=len(misses), wall_s=time.perf_counter() - t0,
            cell_walls=cell_walls,
            workers=self._pool_size(len(units)),
            batched_groups=batched_groups,
            batched_trials=batched_trials,
            cache=self.cache.stats() if self.cache is not None else None)
        log.debug("%s: %s", spec.name, telemetry.summary())
        return SweepResult(spec=spec,
                           results=[s for s in slots if s is not None],
                           telemetry=telemetry)

    # ------------------------------------------------------------------
    def _plan_units(self, cells: List[CellSpec],
                    misses: List[int]) -> List[List[int]]:
        """Partition the miss list into execution units, in order.

        A unit is a list of cell indices: singletons run through the
        per-cell task function exactly as before; longer units are runs
        of same-configuration ``elect`` trials whose backend advertises
        a *genuinely* vectorized batch path
        (:meth:`EngineBackend.supports_batch` returns ``None``) and
        execute as one ``run_batch`` call.  Backends without one — the
        default event loop included — never group, so batching changes
        nothing unless it actually is a speedup.
        """
        from .tasks import plan_elect_group

        units: List[List[int]] = []
        i = 0
        while i < len(misses):
            cell = cells[misses[i]]
            j = i + 1
            if self.batch_trials and cell.task == "elect":
                key = cell.group_key()
                while (j < len(misses)
                       and cells[misses[j]].task == "elect"
                       and cells[misses[j]].group_key() == key):
                    j += 1
            group = [misses[k] for k in range(i, j)]
            batched = False
            if len(group) >= 2:
                request = plan_elect_group([cells[k] for k in group])
                batched = (request is not None and
                           resolve_backend(cell.backend)
                           .supports_batch(request) is None)
            if batched:
                units.append(group)
            else:
                units.extend([k] for k in group)
            i = j
        return units

    def _pool_size(self, pending: int) -> int:
        """Worker processes a batch of ``pending`` units would use."""
        if self.workers <= 1 or pending <= 1:
            return 1
        return min(self.workers, pending, max(1, (os.cpu_count() or 2)))

    def _iter_execute(self, units: list):
        """Yield per-unit lists of ``(metrics, worker wall seconds)``,
        in unit order (units are single cells or batched cell lists)."""
        if self.workers <= 1 or len(units) <= 1:
            for unit in units:
                yield _timed_execute_unit(unit)
            return
        method = self._mp_context
        if method is None:
            method = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                      else None)
        ctx = multiprocessing.get_context(method)
        procs = self._pool_size(len(units))
        with ctx.Pool(processes=procs) as pool:
            # imap (not imap_unordered) so outputs line up with inputs:
            # completion order never leaks into result order.
            yield from pool.imap(_timed_execute_unit, units, chunksize=1)


def run_sweep(spec: ExperimentSpec, *,
              cache_dir: Optional[str] = None,
              workers: int = 1,
              progress: Optional[Callable[[str], None]] = None,
              on_cell: Optional[Callable[[int, int], None]] = None,
              batch_trials: bool = True) -> SweepResult:
    """One-call sweep: build a :class:`Runner` and run ``spec``."""
    runner = Runner(cache_dir=cache_dir, workers=workers,
                    batch_trials=batch_trials)
    return runner.run(spec, progress=progress, on_cell=on_cell)
