"""Parallel experiment engine (system S9).

Declarative sweeps over (algorithm × topology × params × seed), executed
serially or fanned out over ``multiprocessing`` workers with
bit-identical results, cached on disk as JSON-lines keyed by a content
hash of each cell, and aggregated into the :mod:`repro.analysis` layer.

Typical use::

    from repro.experiments import ExperimentSpec, run_sweep

    spec = ExperimentSpec(
        name="scaling",
        algorithms=["least-el", "kingdom"],
        graphs=["ring:32", "ring:64", "er:100:0.08"],
        trials=10,
    )
    sweep = run_sweep(spec, cache_dir=".repro-cache", workers=4)
    for group in sweep.groups():
        print(group.label, group.mean("messages"), group.success_rate)
"""

from .aggregate import GroupStats, aggregate
from .cache import ResultCache
from .runner import CellResult, Runner, SweepResult, execute_cell, run_sweep
from .spec import CellSpec, ExperimentSpec, derive_seed
from .tasks import TASKS, make_ids, make_wakeup, register_task, resolve_task

__all__ = [
    "CellResult",
    "CellSpec",
    "ExperimentSpec",
    "GroupStats",
    "ResultCache",
    "Runner",
    "SweepResult",
    "TASKS",
    "aggregate",
    "derive_seed",
    "execute_cell",
    "make_ids",
    "make_wakeup",
    "register_task",
    "resolve_task",
    "run_sweep",
]
