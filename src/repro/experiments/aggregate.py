"""Bridge from raw cell results to the analysis layer.

:func:`aggregate` folds a sweep's per-trial cell results into one
:class:`GroupStats` per configuration (same algorithm, graph, params —
everything but the trial index).  Numeric metrics become
:class:`repro.analysis.Summary` five-number summaries; boolean metrics
become rates.  :meth:`GroupStats.to_trial_stats` converts
election-shaped groups into the :class:`repro.analysis.TrialStats` the
existing fitting/tables code consumes, so sweeps plug straight into
``power_law_fit``, ``ratio_band`` and friends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

from ..analysis.stats import Summary, TrialStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import CellResult


@dataclass
class GroupStats:
    """All trials of one grid configuration, aggregated."""

    task: str
    algorithm: Optional[str]
    graph: Optional[str]
    params: Dict[str, Any]
    cells: int
    metrics: Dict[str, Summary] = field(default_factory=dict)
    rates: Dict[str, float] = field(default_factory=dict)
    #: Non-default execution-model knobs of this configuration
    #: (``delay``/``crash``/``loss``/``model_seed``), empty for the
    #: paper's synchronous fault-free model.
    model: Dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        bits = [b for b in (self.algorithm, self.graph) if b]
        bits += [f"{k}={v}" for k, v in sorted(self.params.items())]
        bits += [f"{k}={v}" for k, v in sorted(self.model.items())]
        return " ".join(bits) or self.task

    @property
    def success_rate(self) -> Optional[float]:
        return self.rates.get("success")

    def mean(self, metric: str) -> float:
        return self.metrics[metric].mean

    def to_trial_stats(self) -> TrialStats:
        """Convert to the analysis layer's :class:`TrialStats`.

        Requires the election-shaped metrics (``messages``, ``rounds``,
        ``bits``, ``success``) that the built-in election tasks emit.
        """
        missing = [k for k in ("messages", "rounds", "bits") if k not in self.metrics]
        if missing or "success" not in self.rates:
            raise ValueError(
                f"group {self.label!r} lacks election metrics "
                f"(missing: {missing or ['success']})")
        surviving = self.rates.get("success_surviving", self.rates["success"])
        return TrialStats(trials=self.cells,
                          successes=round(self.rates["success"] * self.cells),
                          messages=self.metrics["messages"],
                          rounds=self.metrics["rounds"],
                          bits=self.metrics["bits"],
                          surviving_successes=round(surviving * self.cells))


def aggregate(results: Iterable["CellResult"]) -> List[GroupStats]:
    """Group per-trial results by configuration and summarize each group.

    Groups appear in first-encounter order, which for a sweep is the
    deterministic grid-expansion order.
    """
    groups: Dict[str, List["CellResult"]] = {}
    for result in results:
        groups.setdefault(result.cell.group_key(), []).append(result)

    out: List[GroupStats] = []
    for members in groups.values():
        first = members[0].cell
        numeric: Dict[str, List[float]] = {}
        booleans: Dict[str, List[bool]] = {}
        for member in members:
            for key, value in member.metrics.items():
                if isinstance(value, bool):
                    booleans.setdefault(key, []).append(value)
                elif isinstance(value, (int, float)):
                    numeric.setdefault(key, []).append(float(value))
        out.append(GroupStats(
            task=first.task,
            algorithm=first.algorithm,
            graph=first.graph,
            params=first.param_dict,
            cells=len(members),
            metrics={k: Summary.of(v) for k, v in numeric.items() if v},
            rates={k: sum(v) / len(v) for k, v in booleans.items() if v},
            model=first.model_dict,
        ))
    return out
