"""Task registry: what a single grid cell *does*.

A task is a function ``task(cell: CellSpec) -> dict`` returning a flat,
JSON-serializable metrics mapping.  All randomness must derive from
``cell.seed`` — that is the whole contract that makes parallel runs
bit-identical to serial ones and cache records trustworthy.

Built-in tasks
--------------
``elect``
    One leader election of a registry algorithm on a graph-spec graph.
``candidate-f``
    Theorem 4.4's knob: a :class:`CandidateElection` with the expected
    candidate count fixed by the ``f`` param (bypasses the registry so
    sweeps can put ``f`` on an axis).
``clique-cycle``
    Builds the Figure 1 clique-cycle for an ``instance`` = ``"n:d"``
    param and reports its derived parameters and symmetry check.
``bridge-crossing``
    One Theorem 3.1 dumbbell trial (``half`` = ``"n:m"`` param): sample
    from Ψ, run the cell's algorithm with bridges watched, report the
    messages sent before the first crossing.
``truncated-elect``
    One Theorem 3.13 trial: run the cell's algorithm on the Figure 1
    clique-cycle (``instance`` = ``"n:d"``) but stop after
    ``frac × D'`` rounds; report whether a unique leader existed.

Custom tasks register with :func:`register_task`, or live anywhere
importable and are referenced as ``"package.module:function"``.
"""

from __future__ import annotations

import importlib
from functools import lru_cache
from types import SimpleNamespace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..graphs.ids import IdAssigner, RandomIds, ReversedIds, SequentialIds
from ..graphs.network import Network
from ..graphs.specs import SEEDED_KINDS, parse_graph_spec
from ..graphs.topology import Topology
from ..sim.backend import RunRequest, resolve_backend
from ..sim.contract import BatchRunRequest
from ..sim.models import make_model
from ..sim.scheduler import RunResult, Simulator
from ..sim.wakeup import AdversarialWakeup, Simultaneous, WakeupModel
from .spec import CellSpec

Task = Callable[[CellSpec], Dict[str, Any]]

TASKS: Dict[str, Task] = {}


def register_task(name: str) -> Callable[[Task], Task]:
    """Decorator adding a task to the registry under ``name``."""
    def decorate(fn: Task) -> Task:
        TASKS[name] = fn
        return fn
    return decorate


def resolve_task(name: str) -> Task:
    """Look up a registered task, or import a ``module:function`` path."""
    if name in TASKS:
        return TASKS[name]
    if ":" in name:
        module_name, _, attr = name.partition(":")
        module = importlib.import_module(module_name)
        fn = getattr(module, attr, None)
        if callable(fn):
            return fn
    known = ", ".join(sorted(TASKS))
    raise KeyError(f"unknown task {name!r}; registered tasks: {known}")


# ----------------------------------------------------------------------
# Spec-string factories for the simulator's strategy objects.
# ----------------------------------------------------------------------
def make_wakeup(spec: Optional[str]) -> Optional[WakeupModel]:
    """``None`` | ``simultaneous`` | ``adversarial[:frac[:max_delay]]``."""
    if spec is None:
        return None
    parts = spec.split(":")
    kind = parts[0].lower()
    if kind == "simultaneous":
        return Simultaneous()
    if kind == "adversarial":
        fraction = float(parts[1]) if len(parts) > 1 else 0.25
        max_delay = int(parts[2]) if len(parts) > 2 else 0
        return AdversarialWakeup(fraction_awake=fraction, max_delay=max_delay)
    raise ValueError(f"unknown wakeup spec {spec!r}")


def make_ids(spec: Optional[str]) -> Optional[IdAssigner]:
    """``None`` | ``random`` | ``sequential[:start]`` | ``reversed[:start]``."""
    if spec is None:
        return None
    parts = spec.split(":")
    kind = parts[0].lower()
    if kind == "random":
        return RandomIds()
    if kind == "sequential":
        return SequentialIds(start=int(parts[1]) if len(parts) > 1 else 1)
    if kind == "reversed":
        return ReversedIds(start=int(parts[1]) if len(parts) > 1 else 1)
    raise ValueError(f"unknown ids spec {spec!r}")


# ----------------------------------------------------------------------
# Shared election harness
# ----------------------------------------------------------------------
@lru_cache(maxsize=256)
def _topology_and_diameter(graph: str, seed: int) -> Tuple[Topology, int]:
    topology = parse_graph_spec(graph, seed=seed)
    return topology, topology.diameter()


def _cell_topology(cell: CellSpec) -> Tuple[Topology, int]:
    """Per-process memo of (topology, diameter) for a cell's graph.

    Deterministic graph kinds ignore the seed entirely, so all their
    trials share one construction and one O(n·m) diameter BFS; seeded
    kinds keep the cell seed in the key and are redrawn per cell.
    """
    kind = cell.graph.split(":")[0].lower()
    return _topology_and_diameter(cell.graph,
                                  cell.seed if kind in SEEDED_KINDS else 0)


def _election_metrics(result: RunResult, network: Network,
                      diameter: int) -> Dict[str, Any]:
    metrics = result.metrics
    return {
        "n": network.num_nodes,
        "m": network.num_edges,
        "D": diameter,
        "messages": result.messages,
        "messages_delivered": metrics.messages_delivered,
        "messages_dropped": metrics.messages_dropped,
        "rounds": result.rounds,
        "rounds_executed": metrics.rounds_executed,
        "bits": result.bits,
        "success": bool(result.has_unique_leader),
        "success_surviving": bool(result.has_unique_surviving_leader),
        "leaders": result.num_leaders,
        "crashes": len(metrics.crashed_nodes),
        "truncated": bool(result.truncated),
        "leader_uid": result.leader_uid,
    }


def _check_delay_tolerance(algorithm: Optional[str], spec: Any,
                           model: Any) -> None:
    """Refuse delayed runs of synchronous-only algorithms up front.

    The kingdom algorithms (``delay_tolerant=False`` in the registry)
    assume lock-step rounds; under Δ > 1 delays their conquest waves
    re-send over ports still holding a delayed message in flight, which
    trips the model check (``ModelViolation: sent twice on port ...``)
    mid-election.  Failing here turns a seed-dependent crash deep in a
    sweep into an immediate, explainable refusal.
    """
    if spec is None or getattr(spec, "delay_tolerant", True):
        return
    if model is None or model.delay.max_delay <= 1:
        return
    raise ValueError(
        f"algorithm {algorithm!r} is synchronous-only: it cannot run "
        f"under message delays (max_delay="
        f"{model.delay.max_delay}); drop the delay model or pick a "
        "delay-tolerant algorithm")


def _run_election(cell: CellSpec, factory: Callable[[], Any],
                  needs: tuple,
                  algorithm: Optional[str] = None,
                  spec: Any = None) -> Dict[str, Any]:
    from ..api import _auto_knowledge

    if cell.graph is None:
        raise ValueError(f"task {cell.task!r} needs a graph spec")
    model = make_model(cell.delay, cell.crash, cell.loss,
                       model_seed=cell.model_seed)
    _check_delay_tolerance(algorithm, spec, model)
    topology, diameter = _cell_topology(cell)
    network = Network.build(topology, seed=cell.seed,
                            ids=make_ids(cell.ids))
    knowledge = _auto_knowledge(network, tuple(needs) + cell.auto_knowledge,
                                cell.knowledge_dict, diameter=diameter)
    request = RunRequest(network=network, factory=factory, seed=cell.seed,
                         knowledge=knowledge,
                         wakeup=make_wakeup(cell.wakeup),
                         model=model,
                         congest_bits=cell.congest_bits,
                         max_rounds=cell.max_rounds,
                         algorithm=algorithm)
    result = resolve_backend(cell.backend).run(request)
    return _election_metrics(result, network, diameter)


def plan_elect_group(cells: Sequence[CellSpec]) -> Optional[BatchRunRequest]:
    """One :class:`BatchRunRequest` covering ``cells``, or ``None``.

    ``cells`` must be same-configuration ``elect`` trials (equal
    ``group_key()``, differing only in trial/seed).  A cell's seed is
    both its network seed and its simulator seed (see
    :func:`_run_election`), so the batch's seed pairs are
    ``(cell.seed, cell.seed)`` and its sequential expansion is exactly
    the per-cell execution.  Returns ``None`` whenever the group cannot
    be expressed as one batch — seeded graph kinds redraw their topology
    per trial, and malformed configs are left to the per-cell path so
    they raise their real, specific error.
    """
    from ..api import _auto_knowledge, _ensure_registry

    first = cells[0]
    if first.task != "elect" or first.graph is None or first.algorithm is None:
        return None
    if first.graph.split(":")[0].lower() in SEEDED_KINDS:
        return None  # per-trial topologies: no shared trial axis
    if first.params:
        return None  # elect rejects params; let the per-cell path say so
    registry = _ensure_registry()
    spec = registry.get(first.algorithm)
    if spec is None:
        return None
    try:
        topology, diameter = _cell_topology(first)
        model = make_model(first.delay, first.crash, first.loss,
                           model_seed=first.model_seed)
        _check_delay_tolerance(first.algorithm, spec, model)
        # _auto_knowledge only reads num_nodes/num_edges (+ the passed
        # diameter), so a topology shim avoids building any network.
        shim = SimpleNamespace(num_nodes=topology.num_nodes,
                               num_edges=topology.num_edges,
                               topology=topology)
        knowledge = _auto_knowledge(
            shim, tuple(spec.needs) + first.auto_knowledge,
            first.knowledge_dict, diameter=diameter)
        wakeup = make_wakeup(first.wakeup)
        ids = make_ids(first.ids)
    except Exception:
        return None
    return BatchRunRequest(
        topology=topology, factory=spec.factory,
        seeds=[(cell.seed, cell.seed) for cell in cells],
        knowledge=knowledge, ids=ids, wakeup=wakeup, model=model,
        congest_bits=first.congest_bits, max_rounds=first.max_rounds,
        algorithm=first.algorithm)


def execute_elect_group(cells: Sequence[CellSpec]) -> List[Dict[str, Any]]:
    """Run same-configuration ``elect`` trials as one backend batch.

    Returns one metrics row per cell, in cell order, identical to
    executing each cell through :func:`elect_task` (the batch contract
    guarantees bit-identical per-trial results; the rows are computed by
    the same :func:`_election_metrics`).  Groups that cannot be planned
    fall back to per-cell execution.
    """
    request = plan_elect_group(cells)
    if request is None:
        return [resolve_task(cell.task)(cell) for cell in cells]
    results = resolve_backend(cells[0].backend).run_batch(request)
    _, diameter = _cell_topology(cells[0])
    return [_election_metrics(result, result.network, diameter)
            for result in results]


def _reject_unsupported(cell: CellSpec, **fields: Any) -> None:
    """Fail loudly on cell fields this task would silently ignore.

    The ignored value would still enter the cache digest, so accepting
    it would let users believe they measured a setting that never took
    effect.
    """
    set_fields = [name for name, value in fields.items()
                  if value not in (None, (), {})]
    if set_fields:
        raise ValueError(
            f"task {cell.task!r} does not support: {', '.join(set_fields)}")


def _reject_unknown_params(cell: CellSpec, allowed: tuple = ()) -> None:
    """Fail loudly on param axes no task code will consume.

    Every param value perturbs the cell's derived seed, so a typo'd
    axis would otherwise show distinct per-value metrics that look like
    a measured effect.
    """
    unknown = sorted(k for k, _ in cell.params if k not in allowed)
    if unknown:
        raise ValueError(
            f"task {cell.task!r} does not consume params: {', '.join(unknown)}")


def _require_param(cell: CellSpec, name: str) -> Any:
    if name not in cell.param_dict:
        raise ValueError(f"task {cell.task!r} requires a {name!r} param axis")
    return cell.param_dict[name]


def _split_pair(value: Any, what: str) -> tuple:
    try:
        a, b = str(value).split(":")
        return int(a), int(b)
    except ValueError:
        raise ValueError(f"{what} param must look like 'A:B', got {value!r}")


# ----------------------------------------------------------------------
# Built-in tasks
# ----------------------------------------------------------------------
@register_task("elect")
def elect_task(cell: CellSpec) -> Dict[str, Any]:
    """One election of a registry algorithm (the engine's workhorse)."""
    from ..api import _ensure_registry

    _reject_unknown_params(cell)
    registry = _ensure_registry()
    if cell.algorithm is None:
        raise ValueError("task 'elect' needs an algorithm axis "
                         "(set ExperimentSpec.algorithms / --algorithms)")
    if cell.algorithm not in registry:
        known = ", ".join(sorted(registry))
        raise ValueError(
            f"unknown algorithm {cell.algorithm!r}; choose one of: {known}")
    spec = registry[cell.algorithm]
    return _run_election(cell, spec.factory, spec.needs,
                         algorithm=cell.algorithm, spec=spec)


@register_task("candidate-f")
def candidate_f_task(cell: CellSpec) -> Dict[str, Any]:
    """Theorem 4.4 with the candidate count ``f`` as a swept param."""
    from ..core.candidate_le import CandidateElection

    _reject_unsupported(cell, algorithm=cell.algorithm)
    _reject_unknown_params(cell, allowed=("f",))
    f_val = float(_require_param(cell, "f"))
    return _run_election(cell, lambda: CandidateElection(lambda n: f_val),
                         needs=("n",))


@register_task("clique-cycle")
def clique_cycle_task(cell: CellSpec) -> Dict[str, Any]:
    """Build one Figure 1 instance (``instance`` param = ``"n:d"``)."""
    from ..graphs.clique_cycle import CliqueCycle

    _reject_unsupported(cell, algorithm=cell.algorithm, graph=cell.graph,
                        knowledge=cell.knowledge,
                        auto_knowledge=cell.auto_knowledge, ids=cell.ids,
                        wakeup=cell.wakeup, congest_bits=cell.congest_bits,
                        max_rounds=cell.max_rounds,
                        delay=cell.delay, crash=cell.crash, loss=cell.loss,
                        model_seed=cell.model_seed or None,
                        backend=cell.backend)
    _reject_unknown_params(cell, allowed=("instance",))
    n, d = _split_pair(_require_param(cell, "instance"), "instance")
    cc = CliqueCycle(n, d)
    return {
        "requested_n": n,
        "requested_d": d,
        "num_cliques": cc.params.num_cliques,
        "clique_size": cc.params.clique_size,
        "num_nodes": cc.params.num_nodes,
        "diameter": cc.topology.diameter(),
        "automorphism": bool(cc.is_automorphism()),
    }


@register_task("bridge-crossing")
def bridge_crossing_task(cell: CellSpec) -> Dict[str, Any]:
    """One Theorem 3.1 dumbbell trial (``half`` param = ``"n:m"``)."""
    from ..api import _ensure_registry
    from ..graphs.dumbbell import DumbbellSampler
    from ..lower_bounds.bridge_crossing import run_crossing_trial

    _reject_unsupported(cell, graph=cell.graph,
                        auto_knowledge=cell.auto_knowledge, ids=cell.ids,
                        wakeup=cell.wakeup, congest_bits=cell.congest_bits,
                        delay=cell.delay, crash=cell.crash, loss=cell.loss,
                        model_seed=cell.model_seed or None,
                        backend=cell.backend)
    _reject_unknown_params(cell, allowed=("half",))
    registry = _ensure_registry()
    algorithm = cell.algorithm or "least-el"
    if algorithm not in registry:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    n, m = _split_pair(_require_param(cell, "half"), "half")
    sampler = DumbbellSampler(n, m, seed=cell.seed)
    trial = run_crossing_trial(sampler.sample(), registry[algorithm].factory,
                               seed=cell.seed,
                               knowledge=cell.knowledge_dict or None,
                               max_rounds=cell.max_rounds)
    return {
        "n": n,
        "m": m,
        "kappa": sampler.kappa,
        "m1": sampler.kappa * (sampler.kappa - 1) // 2,
        "crossed": bool(trial.crossed),
        "messages_before_crossing": trial.messages_before_crossing,
        "total_messages": trial.total_messages,
        "rounds": trial.rounds,
        "success": bool(trial.solved),
    }


@lru_cache(maxsize=64)
def _clique_cycle_and_diameter(n: int, d: int):
    """Per-process memo: the Figure 1 construction is deterministic in
    (n, d), so all trials share one build and one O(n·m) diameter BFS
    (mirrors :func:`_topology_and_diameter` for graph-spec cells)."""
    from ..graphs.clique_cycle import CliqueCycle

    cc = CliqueCycle(n, d)
    return cc, cc.topology.diameter()


@register_task("truncated-elect")
def truncated_elect_task(cell: CellSpec) -> Dict[str, Any]:
    """One Theorem 3.13 truncation trial on the Figure 1 clique-cycle.

    Params: ``instance`` = ``"n:d"`` (the construction's target size and
    arc count) and ``frac`` — the run is cut off after
    ``max(1, int(frac · D'))`` rounds, where ``D'`` is the number of
    cliques (the graph's Θ(diameter)).  The theorem predicts a unique
    leader is unlikely while ``frac`` is a small constant and routine
    once ``frac·D'`` clears the diameter.
    """
    from ..api import _ensure_registry

    _reject_unsupported(cell, graph=cell.graph,
                        auto_knowledge=cell.auto_knowledge, ids=cell.ids,
                        wakeup=cell.wakeup, congest_bits=cell.congest_bits,
                        max_rounds=cell.max_rounds,
                        delay=cell.delay, crash=cell.crash, loss=cell.loss,
                        model_seed=cell.model_seed or None,
                        backend=cell.backend)
    _reject_unknown_params(cell, allowed=("instance", "frac"))
    registry = _ensure_registry()
    algorithm = cell.algorithm or "least-el"
    if algorithm not in registry:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    n, d = _split_pair(_require_param(cell, "instance"), "instance")
    frac = float(_require_param(cell, "frac"))
    if frac <= 0:
        raise ValueError(f"frac param must be positive, got {frac!r}")
    cc, diameter = _clique_cycle_and_diameter(n, d)
    d_prime = cc.params.num_cliques
    horizon = max(1, int(frac * d_prime))
    network = Network.build(cc.topology, seed=cell.seed)
    knowledge = dict(cell.knowledge_dict)
    knowledge.setdefault("n", network.num_nodes)
    knowledge.setdefault("D", diameter)
    sim = Simulator(network, registry[algorithm].factory, seed=cell.seed,
                    knowledge=knowledge)
    result = sim.run(max_rounds=horizon)
    return {
        "n": network.num_nodes,
        "m": network.num_edges,
        "D": diameter,
        "d_prime": d_prime,
        "horizon": horizon,
        "messages": result.messages,
        "rounds": result.rounds,
        "leaders": result.num_leaders,
        "success": bool(result.has_unique_leader),
        "truncated": bool(result.truncated),
    }
