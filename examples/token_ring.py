#!/usr/bin/env python
"""Token regeneration in a ring — leader election's original job.

Le Lann's 1977 problem (cited as the paper's reference [15]): stations
in a token-ring network detect that the token was lost and must
regenerate exactly one.  Electing a leader *is* regenerating the token:
the elected station creates it.

Rings are also where the deterministic lower bound Ω(n log n) lives
(Frederickson–Lynch [8]), making them the sharpest stage for comparing:

* flood-max            — O(n) rounds but can burn Θ(n·m) messages on
                         adversarial ID layouts;
* kingdom (Thm 4.10)   — deterministic O(m log n) messages;
* dfs-agent (Thm 4.1)  — deterministic O(m) = O(n) messages(!), at the
                         price of time exponential in the smallest ID;
* least-el             — randomized O(m log n) expected, O(D) time.

Usage:  python examples/token_ring.py
"""

from repro.graphs import Network, ring
from repro.graphs.ids import ReversedIds, SequentialIds
from repro.sim import Simulator
from repro.api import _ensure_registry


def run(name: str, network: Network, knowledge, max_rounds=10 ** 9):
    spec = _ensure_registry()[name]
    sim = Simulator(network, spec.factory, seed=1, knowledge=knowledge)
    return sim.run(max_rounds=max_rounds)


def main() -> None:
    n = 32
    topology = ring(n)
    d = topology.diameter()
    print(f"token ring: {n} stations, D={d}")

    # Adversarial layout: station IDs decrease around the ring — the
    # classic worst case for naive max-flooding.
    adversarial = Network.build(topology, seed=1, ids=ReversedIds(start=5))
    # Benign layout for the rate-limited DFS agents (time ~ 2^min_id).
    benign = Network.build(topology, seed=1, ids=SequentialIds(start=2))

    rows = [
        ("flood-max", adversarial, {"n": n, "D": d}),
        ("kingdom", adversarial, {}),
        ("least-el", adversarial, {"n": n}),
        ("dfs-agent", benign, {}),
    ]
    print(f"\n{'algorithm':12s} {'messages':>9s} {'rounds':>12s} {'token at':>9s}")
    for name, network, knowledge in rows:
        result = run(name, network, knowledge)
        assert result.has_unique_leader, name
        print(f"{name:12s} {result.messages:9d} {result.rounds:12d} "
              f"{result.leader_uid:9d}")

    print("\nnote: dfs-agent regenerates the token with the FEWEST messages")
    print("(Theorem 4.1's O(m)), but its round count is exponential in the")
    print("smallest station ID — the exact message/time trade-off the")
    print("paper's lower bounds show is unavoidable to beat.")


if __name__ == "__main__":
    main()
