#!/usr/bin/env python
"""Quickstart: elect a leader on a random network in three lines.

Runs the least-element election of Kutten et al.'s Section 4.2 (the
O(D)-time, O(m log n)-message workhorse) on a connected Erdős–Rényi
graph, then shows the one-call API, the low-level API, and the cost
counters the paper's Table 1 is about.

Usage:  python examples/quickstart.py
"""

from repro import elect_leader, run_algorithm
from repro.graphs import Network, erdos_renyi
from repro.core import LeastElementElection
from repro.obs import RecordingTracer
from repro.sim import Simulator


def main() -> None:
    topology = erdos_renyi(100, 0.08, seed=42)
    print(f"network: {topology.name}, n={topology.num_nodes}, "
          f"m={topology.num_edges}, D={topology.diameter()}")

    # --- one call -----------------------------------------------------
    result = elect_leader(topology, algorithm="least-el", seed=7)
    print(f"\nleader elected: uid={result.leader_uid}")
    print(f"  rounds:   {result.rounds}   (paper: O(D))")
    print(f"  messages: {result.messages} (paper: O(m log n) w.h.p.)")
    print(f"  bits:     {result.bits}")

    # --- the same thing, spelled out ------------------------------------
    network = Network.build(topology, seed=7)
    sim = Simulator(network, LeastElementElection, seed=7,
                    knowledge={"n": topology.num_nodes})
    result = sim.run()
    assert result.has_unique_leader

    # --- message breakdown by protocol message type ---------------------
    print("\nmessage breakdown:")
    for kind, count in sorted(result.metrics.per_kind.items()):
        print(f"  {kind:18s} {count}")

    # --- any other algorithm from Table 1, by name ----------------------
    for name in ("kingdom", "las-vegas", "clustering"):
        r = run_algorithm(topology, name, seed=7)
        print(f"\n{name:12s} rounds={r.rounds:5d} messages={r.messages:6d} "
              f"unique_leader={r.has_unique_leader}")

    # --- observe a run: structured trace + per-round timeline -----------
    tracer = RecordingTracer()
    traced = run_algorithm(topology, "least-el", seed=7,
                           tracer=tracer, timeline=True)
    kinds = sorted({e["ev"] for e in tracer.events})
    print(f"\ntraced run: {len(tracer.events)} events ({', '.join(kinds)})")
    print("per-round message volume:")
    print(traced.timeline.render(width=48))


if __name__ == "__main__":
    main()
