#!/usr/bin/env python
"""How do the paper's elections behave when the rest of the adversary
is switched on?

The paper proves its Table 1 bounds in the clean synchronous model:
message delays are exactly one round, nodes never fail, links never
drop.  The execution-model layer (``repro.sim.models``) turns on the
standard extensions — bounded delays Δ, crash-stop faults, lossy links
— and this script measures what that does to *correctness*, sweeping
two representative algorithms over cliques and rings:

* **least-el** (Section 4.2) is wave-driven: it mostly tolerates
  delays in [1, Δ] (time stretches by ≤ Δ) though message *reordering*
  can occasionally stall a wave, and a single lost or crash-swallowed
  message usually does.
* **kingdom** (Theorem 4.10 / Algorithm 2) re-floods its kingdom
  claims, which makes it surprisingly robust to moderate loss — at the
  price of extra messages — but crashes can still behead a kingdom.
  Kingdom assumes lock-step rounds, so it sits out the *delay* sweep:
  under Δ > 1 its conquest waves re-send over ports that still hold a
  delayed message in flight, which the simulator's model check rejects
  (``repro.api`` marks it ``delay_tolerant=False``).

Two success columns are reported: ``success`` is the paper's strict
condition (every node decided, exactly one leader), ``surviving`` the
crash-tolerant one (the condition restricted to non-crashed nodes).

Pass a directory as argv[1] to cache results there; a second run with
the same grids executes zero simulations.

Usage:  python examples/resilience.py [cache_dir]
"""

import sys

from repro import run_sweep
from repro.api import _ensure_registry

ALGORITHMS = ["least-el", "kingdom"]
GRAPHS = ["complete:24", "ring:24"]
TRIALS = 10


def delay_tolerant(algorithms):
    """Split ``algorithms`` into (delay-capable, synchronous-only)."""
    registry = _ensure_registry()
    capable = [a for a in algorithms if registry[a].delay_tolerant]
    return capable, [a for a in algorithms if a not in capable]


def print_table(title, sweep, axis):
    print(f"\n{title}")
    print(f"{'configuration':<34} {axis:>12} {'success':>8} "
          f"{'surviving':>10} {'sent':>7} {'dropped':>8} {'rounds':>7}")
    for g in sweep.groups():
        base = " ".join(b for b in (g.algorithm, g.graph) if b)
        value = g.model.get(axis, "-")
        surviving = g.rates.get("success_surviving")
        print(f"{base:<34} {str(value):>12} {g.success_rate:>8.2f} "
              f"{surviving:>10.2f} {g.mean('messages'):>7.0f} "
              f"{g.mean('messages_dropped'):>8.1f} {g.mean('rounds'):>7.0f}")


def main() -> None:
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else None
    common = dict(algorithms=ALGORITHMS, graphs=GRAPHS, trials=TRIALS,
                  seed=9, max_rounds=10 ** 6, cache_dir=cache_dir,
                  progress=lambda msg: print(f"... {msg}", file=sys.stderr))

    delay_algos, skipped = delay_tolerant(ALGORITHMS)
    if skipped:
        print(f"... delay sweep: skipping {', '.join(skipped)} "
              "(synchronous-only: crashes under Δ > 1 delays)",
              file=sys.stderr)
    delays = run_sweep(name="resilience-delay",
                       delay=["1", "uniform:2", "uniform:4"],
                       **{**common, "algorithms": delay_algos})
    print_table("Delay: correctness under bounded message delays Δ",
                delays, "delay")

    crashes = run_sweep(name="resilience-crash",
                        crash=[0, 1, 2, 4], **common)
    print_table("Crash-stop: correctness vs number of crashed nodes",
                crashes, "crash")

    losses = run_sweep(name="resilience-loss",
                       loss=[0, 0.01, 0.05], **common)
    print_table("Loss: correctness vs per-message drop probability",
                losses, "loss")

    print("\nReadings: wave algorithms (least-el) largely shrug off "
          "pure delay (rounds stretch, correctness mostly holds) but "
          "stall under loss; kingdom's re-flooding buys loss tolerance "
          "at extra message cost; neither was designed for crash "
          "faults — that gap is exactly what this axis measures.")


if __name__ == "__main__":
    main()
