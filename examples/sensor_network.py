#!/usr/bin/env python
"""Sensor-network coordinator election under an energy budget.

The paper's introduction motivates message-optimal election with ad hoc
and sensor networks, where every transmitted message costs battery.
This example models a field of sensors as a grid-with-shortcuts
topology, charges 1 energy unit per message, and compares the Table 1
algorithms on total energy, worst single-node drain (the node that dies
first), and time-to-coordinator.

It then re-elects after "killing" the coordinator's neighborhood —
the churn scenario where cheap re-election matters.

Usage:  python examples/sensor_network.py
"""

import random
import statistics

from repro import run_algorithm
from repro.graphs import Topology, grid


def sensor_field(rows: int, cols: int, shortcuts: int, seed: int) -> Topology:
    """A grid of sensors plus a few long-range radio links."""
    base = grid(rows, cols)
    rng = random.Random(seed)
    edges = list(base.edges)
    n = base.num_nodes
    for _ in range(shortcuts):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.append((u, v))
    return Topology(n, edges, name=f"sensor-{rows}x{cols}")


def survivors_after_failure(topology: Topology, dead: set) -> Topology:
    """Re-index the surviving sensors into a fresh topology."""
    alive = [v for v in topology if v not in dead]
    index = {v: i for i, v in enumerate(alive)}
    edges = [(index[u], index[v]) for (u, v) in topology.edges
             if u not in dead and v not in dead]
    return Topology(len(alive), edges, name=topology.name + "-degraded")


ALGORITHMS = [
    # (name, reason to consider it in a sensor network)
    ("least-el", "baseline: O(m log n) messages"),
    ("candidate", "Thm 4.4(A): O(m loglog n) messages"),
    ("candidate-constant", "Thm 4.4(B): O(m) messages, small failure prob"),
    ("clustering", "Thm 4.7: O(m + n log n) messages"),
    ("kingdom", "Thm 4.10: deterministic, no parameters needed"),
]


def report(topology: Topology, trials: int = 5) -> None:
    print(f"\nfield: n={topology.num_nodes} sensors, "
          f"m={topology.num_edges} links, D={topology.diameter()}")
    print(f"{'algorithm':20s} {'energy':>8s} {'max-drain':>10s} "
          f"{'rounds':>7s} {'elected':>8s}")
    for name, why in ALGORITHMS:
        energy, drain, rounds, ok = [], [], [], 0
        for seed in range(trials):
            result = run_algorithm(topology, name, seed=seed)
            energy.append(result.messages)
            drain.append(max(result.metrics.per_node_sent.values(), default=0))
            rounds.append(result.rounds)
            ok += result.has_unique_leader
        print(f"{name:20s} {statistics.fmean(energy):8.0f} "
              f"{statistics.fmean(drain):10.1f} "
              f"{statistics.fmean(rounds):7.1f} {ok:>5d}/{trials}"
              f"   # {why}")


def main() -> None:
    field = sensor_field(10, 10, shortcuts=15, seed=3)
    report(field)

    # Coordinator dies along with its radio neighborhood: re-elect on
    # the degraded field (sensors never need new parameters for the
    # deterministic kingdom algorithm; randomized ones need fresh n).
    result = run_algorithm(field, "least-el", seed=0)
    leader = result.elected_indices[0]
    dead = {leader, *field.neighbors(leader)}
    degraded = survivors_after_failure(field, dead)
    if degraded.is_connected():
        print(f"\ncoordinator + {len(dead) - 1} neighbors failed; re-electing:")
        report(degraded, trials=3)
    else:
        print("\nfield partitioned by the failure — no single coordinator "
              "possible (each partition would elect its own).")


if __name__ == "__main__":
    main()
