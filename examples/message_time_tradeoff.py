#!/usr/bin/env python
"""The Theorem 4.4 trade-off: success probability vs message count.

Theorem 4.4 parameterizes the election by f(n), the expected number of
candidates: messages scale as O(m·min(log f(n), D)) while the failure
probability is e^(-Θ(f(n))).  This script sweeps f from ~1 to n on one
graph and prints the measured trade-off curve — the knob a deployment
turns to trade energy for reliability:

* f = n           -> the [11] least-element algorithm (never fails),
* f = Θ(log n)    -> Theorem 4.4(A) (fails with prob. 1/poly(n)),
* f = Θ(1)        -> Theorem 4.4(B) (O(m) messages, constant failures),
* plus Corollary 4.6's restart wrapper: O(m) expected AND never fails,
  when D is also known.

Usage:  python examples/message_time_tradeoff.py
"""

import math
import statistics

from repro.analysis import run_trials
from repro.core import CandidateElection, RestartingElection
from repro.graphs import erdos_renyi


def main() -> None:
    n = 120
    topology = erdos_renyi(n, target_edges=5 * n, seed=11)
    m, d = topology.num_edges, topology.diameter()
    print(f"graph: n={n}, m={m}, D={d}\n")

    sweeps = [
        ("f=1", lambda k: 1.0),
        ("f=2", lambda k: 2.0),
        ("f=4", lambda k: 4.0),
        ("f=log n", lambda k: math.log(k)),
        ("f=8 log n", lambda k: 8 * math.log(k)),
        ("f=sqrt n", lambda k: math.sqrt(k)),
        ("f=n", lambda k: float(k)),
    ]
    print(f"{'f(n)':12s} {'msgs/m':>8s} {'rounds/D':>9s} {'success':>8s} "
          f"{'e^-f bound':>11s}")
    for label, f in sweeps:
        stats = run_trials(topology, lambda: CandidateElection(f),
                           trials=20, seed=5, knowledge_keys=("n",))
        bound = math.exp(-f(n))
        print(f"{label:12s} {stats.messages.mean / m:8.2f} "
              f"{stats.rounds.mean / d:9.2f} {stats.success_rate:8.2f} "
              f"{1 - bound:11.4f}")

    # The restart wrapper turns constant-f into a Las Vegas algorithm.
    stats = run_trials(topology, lambda: RestartingElection(f=2.0),
                       trials=20, seed=5, knowledge_keys=("n", "D"))
    print(f"\n{'Cor 4.6 (f=2 + restarts, knows D)':34s} "
          f"msgs/m={stats.messages.mean / m:.2f} "
          f"rounds/D={stats.rounds.mean / d:.2f} "
          f"success={stats.success_rate:.2f}")


if __name__ == "__main__":
    main()
