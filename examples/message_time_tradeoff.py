#!/usr/bin/env python
"""The Theorem 4.4 trade-off: success probability vs message count.

Theorem 4.4 parameterizes the election by f(n), the expected number of
candidates: messages scale as O(m·min(log f(n), D)) while the failure
probability is e^(-Θ(f(n))).  This script sweeps f from ~1 to n on one
graph family — through the declarative experiment engine, fanned out
over worker processes — and prints the measured trade-off curve, the
knob a deployment turns to trade energy for reliability:

* f = n           -> the [11] least-element algorithm (never fails),
* f = Θ(log n)    -> Theorem 4.4(A) (fails with prob. 1/poly(n)),
* f = Θ(1)        -> Theorem 4.4(B) (O(m) messages, constant failures),
* plus Corollary 4.6's restart wrapper: O(m) expected AND never fails,
  when D is also known.

Pass a directory as argv[1] to cache results there: a second run with
the same spec executes zero simulations.

Usage:  python examples/message_time_tradeoff.py [cache_dir]
"""

import math
import sys

from repro import run_sweep
from repro.experiments import ExperimentSpec

N = 120
F_VALUES = [1.0, 2.0, 4.0, round(math.log(N), 2), round(8 * math.log(N), 2),
            round(math.sqrt(N), 2), float(N)]


def main() -> None:
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else None
    graph = f"er:{N}:m{5 * N}"

    spec = ExperimentSpec(name="message-time-tradeoff", task="candidate-f",
                          graphs=[graph], params={"f": F_VALUES},
                          trials=20, seed=5)
    sweep = run_sweep(spec, cache_dir=cache_dir, workers=4,
                      progress=lambda msg: print(f"... {msg}"))

    print(f"graph family: {graph}\n")
    print(f"{'f(n)':>8s} {'msgs/m':>8s} {'rounds/D':>9s} {'success':>8s} "
          f"{'1-e^-f bound':>13s}")
    for group in sweep.groups():
        f_val = group.params["f"]
        m, d = group.mean("m"), group.mean("D")
        print(f"{f_val:8.2f} {group.mean('messages') / m:8.2f} "
              f"{group.mean('rounds') / d:9.2f} {group.success_rate:8.2f} "
              f"{1 - math.exp(-f_val):13.4f}")

    # The restart wrapper (Corollary 4.6) turns constant-f into a Las
    # Vegas algorithm: same engine, registry algorithm, D granted.
    wrapper = run_sweep(
        ExperimentSpec(name="message-time-tradeoff-restart",
                       algorithms=["las-vegas"], graphs=[graph],
                       trials=20, seed=5),
        cache_dir=cache_dir, workers=4)
    group = wrapper.groups()[0]
    m, d = group.mean("m"), group.mean("D")
    print(f"\nCor 4.6 (restart wrapper, knows D): "
          f"msgs/m={group.mean('messages') / m:.2f} "
          f"rounds/D={group.mean('rounds') / d:.2f} "
          f"success={group.success_rate:.2f}")


if __name__ == "__main__":
    main()
